#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/fault.hpp"
#include "cluster/reliable.hpp"
#include "cluster/wire.hpp"
#include "mp/comm.hpp"
#include "mp/sim_world.hpp"
#include "rt/cancel.hpp"
#include "rt/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::cluster {

/// The master gave up on the run: every worker died with tasks
/// outstanding, or a task exhausted its attempt budget. Carries enough
/// detail to identify the tasks involved.
class ClusterError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A distributed job was cancelled (job deadline or CancelToken) before
/// it completed; thrown by drivers whose output would otherwise be
/// partial (the distributed MapReduce driver throws this on every rank,
/// mirroring how mapreduce::Job::deadline(Abort) surfaces rt::Cancelled).
class ClusterCancelled : public ClusterError {
 public:
  using ClusterError::ClusterError;
};

/// A serialized snapshot of the master's completed-task state: which
/// tasks are done and their result bytes, encoded with the positional
/// cluster wire format ([magic][version][task_count][done_count] then
/// per completed task [task_id][result blob]). Produced periodically by
/// a master with checkpointing armed; feed it back through
/// ClusterOptions::restart_from (or restart_from_checkpoint) to resume a
/// crashed master without re-running completed tasks.
struct ClusterCheckpoint {
  std::vector<std::byte> bytes;

  bool empty() const { return bytes.empty(); }

  /// Decoded header fields (0 on an empty checkpoint).
  int task_count() const {
    if (bytes.empty()) {
      return 0;
    }
    Reader reader(bytes);
    reader.u32();  // magic, validated on restore
    reader.u32();  // version
    return static_cast<int>(reader.u32());
  }

  int completed_tasks() const {
    if (bytes.empty()) {
      return 0;
    }
    Reader reader(bytes);
    reader.u32();
    reader.u32();
    reader.u32();
    return static_cast<int>(reader.u32());
  }
};

namespace detail {
constexpr std::uint32_t kCheckpointMagic = 0x5042434BU;  // "PBCK"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace detail

/// Tuning knobs of one engine run. Times are seconds on the transport's
/// clock (virtual on SimComm, steady on Comm).
struct ClusterOptions {
  /// A busy worker emits a heartbeat at most this often (paced by
  /// TaskContext::progress calls).
  double heartbeat_interval_s = 0.02;

  /// A worker the master expects to hear from (busy, or between Done and
  /// its next Request) is declared dead after this much silence. Its
  /// in-flight task is re-queued. Parked workers are exempt (they are
  /// silent by protocol).
  double heartbeat_timeout_s = 0.25;

  /// Hard per-attempt deadline: a live attempt older than this is
  /// abandoned and its task re-queued even if heartbeats still arrive.
  /// 0 disables.
  double task_timeout_s = 0.0;

  /// An in-flight task becomes a speculation candidate for idle workers
  /// once its oldest live attempt is at least this old. 0 = immediately
  /// (an idle worker never sits parked while any task is in flight).
  double speculation_age_s = 0.0;

  /// Cap on concurrent live attempts of one task (primary + backups).
  int max_live_attempts = 2;

  /// Total attempts (including failed ones) before the master declares
  /// the task poisonous and throws ClusterError.
  int max_attempts_per_task = 6;

  /// Master poll period; 0 derives heartbeat_timeout_s / 4.
  double tick_s = 0.0;

  /// Job-level deadline (engine-relative seconds). Once the master's
  /// clock passes it with tasks outstanding, the run is cancelled: the
  /// queue is dropped, busy workers receive a Cancel and stop at their
  /// next progress() call, parked workers are shut down. Results of
  /// tasks that finished in time are kept (see
  /// ClusterRunResult::job_cancelled / incomplete_tasks). 0 disables.
  /// Workers only poll for Cancel when this is set, so runs without a
  /// deadline are byte-identical to earlier engine versions on Sim.
  double job_deadline_s = 0.0;

  /// Token-based cancel channel, polled by the master alongside the
  /// deadline (event kind "job-cancel" instead of "job-deadline"); the
  /// drain protocol is shared. Fire it from a task body, a watchdog, or
  /// another thread via rt::CancelSource::cancel(). An invalid
  /// (default) token never cancels, and workers only arm Cancel polling
  /// when the token is valid or a deadline is set.
  rt::CancelToken cancel;

  /// Ack/retry/dedup sublayer tuning; reliability.enabled wraps the
  /// engine's transport in ReliableComm so task dispatch, results and
  /// heartbeats survive an armed mp::TransportChaos plan.
  ReliabilityOptions reliability;

  /// Master checkpointing: serialize the completed-task state every
  /// this-many transport-clock seconds (plus once at wind-down) and
  /// hand it to `on_checkpoint`. 0 disables; armed (on_checkpoint set)
  /// requires a positive finite interval.
  double checkpoint_interval_s = 0.0;
  std::function<void(const ClusterCheckpoint&)> on_checkpoint;

  /// Resume from a previous run's checkpoint: tasks recorded done are
  /// restored (result bytes included) and never re-queued; the event
  /// log records one "restore" event per restored task. The checkpoint
  /// must describe the same task list (task_count is verified). Null =
  /// fresh run.
  const ClusterCheckpoint* restart_from = nullptr;

  double effective_tick_s() const {
    return tick_s > 0.0 ? tick_s : heartbeat_timeout_s / 4.0;
  }

  /// Loud boundary validation, the ClusterOptions mirror of
  /// FaultPlan::validate(): every timing knob must be finite (NaN
  /// compares false against everything, so an unchecked NaN deadline
  /// would silently never fire), intervals ordered, attempt budgets
  /// positive. Checked on every rank by run_cluster_tasks.
  void validate() const {
    util::require(std::isfinite(heartbeat_interval_s) &&
                      std::isfinite(heartbeat_timeout_s) &&
                      heartbeat_interval_s > 0.0 &&
                      heartbeat_timeout_s > heartbeat_interval_s,
                  "ClusterOptions: need 0 < heartbeat_interval_s < "
                  "heartbeat_timeout_s, both finite");
    util::require(std::isfinite(task_timeout_s) && task_timeout_s >= 0.0,
                  "ClusterOptions: task_timeout_s must be finite and >= 0");
    util::require(
        std::isfinite(speculation_age_s) && speculation_age_s >= 0.0,
        "ClusterOptions: speculation_age_s must be finite and >= 0");
    util::require(std::isfinite(tick_s) && tick_s >= 0.0,
                  "ClusterOptions: tick_s must be finite and >= 0");
    util::require(std::isfinite(job_deadline_s) && job_deadline_s >= 0.0,
                  "ClusterOptions: job_deadline_s must be finite and >= 0 "
                  "(0 = no deadline)");
    util::require(max_live_attempts >= 1 && max_attempts_per_task >= 1,
                  "ClusterOptions: attempt limits must be >= 1");
    reliability.validate();
    util::require(std::isfinite(checkpoint_interval_s) &&
                      checkpoint_interval_s >= 0.0,
                  "ClusterOptions: checkpoint_interval_s must be finite and "
                  ">= 0");
    util::require(on_checkpoint == nullptr || checkpoint_interval_s > 0.0,
                  "ClusterOptions: checkpointing is armed (on_checkpoint "
                  "set) but checkpoint_interval_s is <= 0");
    if (restart_from != nullptr && !restart_from->empty()) {
      util::require(restart_from->bytes.size() >= 4 * sizeof(std::uint32_t),
                    "ClusterOptions: restart_from checkpoint is truncated");
      Reader reader(restart_from->bytes);
      util::require(reader.u32() == detail::kCheckpointMagic,
                    "ClusterOptions: restart_from is not a cluster "
                    "checkpoint (bad magic)");
      util::require(reader.u32() == detail::kCheckpointVersion,
                    "ClusterOptions: restart_from checkpoint has an "
                    "unsupported version");
    }
  }
};

/// One master-side scheduling event, timestamped relative to engine
/// start on the transport clock. Kinds: assign, spec-assign, done,
/// dup-done, heartbeat, lost-result, requeue, task-timeout, worker-dead,
/// worker-back, shutdown, all-done, job-deadline, job-cancel, cancel,
/// cancel-drain, checkpoint (claim = completed-task count), restore.
struct ClusterEvent {
  double t_s = 0.0;
  int worker = -1;
  int task = -1;
  std::uint64_t claim = 0;
  std::string kind;
};

struct ClusterStats {
  int tasks = 0;
  int workers = 0;  // size - 1 (rank 0 is the master)
  int attempts = 0;
  int speculative_attempts = 0;
  int requeues = 0;
  int lost_results = 0;
  int dead_workers = 0;
  int resurrections = 0;
  int heartbeats = 0;
  /// Tasks still incomplete when the engine wound down after a
  /// job-deadline cancellation (0 on uncancelled runs).
  int cancelled_tasks = 0;
  /// Checkpoints the master serialized (including the wind-down one).
  int checkpoints = 0;
  /// Tasks restored from ClusterOptions::restart_from instead of run.
  int restored_tasks = 0;
  /// When the last task result arrived (engine-relative seconds).
  double completion_s = 0.0;
  /// When the engine fully wound down (stragglers drained, shutdowns
  /// sent); >= completion_s.
  double makespan_s = 0.0;
};

/// Full observability record of one engine run, the cluster analogue of
/// rt::RunProfile: counters, the master's event log, and a per-worker
/// schedule rendered through the PR-1 trace layer (one lane per rank,
/// one chunk per task attempt).
struct ClusterProfile {
  ClusterStats stats;
  std::vector<ClusterEvent> events;
  std::vector<int> dead_workers;

  /// Outbound wire traffic per rank (messages sent / payload bytes
  /// shipped), snapshotted from the transport's counters when the
  /// master wound down. Cumulative over the world, so it includes any
  /// traffic before the engine ran.
  std::vector<std::uint64_t> wire_messages;
  std::vector<std::uint64_t> wire_bytes;

  /// Master-side reliability counters (retransmits, dedup hits, ...);
  /// all zero when ClusterOptions::reliability is off. Deterministic on
  /// the Sim transport.
  RetryStats retry;

  /// Per-worker attempt timeline: tid = rank, chunk [task, task+1),
  /// claim_order = the attempt's claim id. Render with
  /// schedule->timeline_chart(0). Null when the engine ran without a
  /// profile request.
  std::shared_ptr<const rt::RunProfile> schedule;

  /// One line per event, fixed formatting — byte-identical across runs
  /// on the Sim transport, which is how fault-injection determinism is
  /// asserted in tests.
  std::string event_log() const;

  /// One-paragraph human summary of the run.
  std::string summary() const;

  /// Machine-readable export.
  std::string to_json() const;
};

/// Handle a task body uses to interact with the engine while running:
/// pace heartbeats, charge modelled work, learn its identity. progress()
/// is also the injection point for crash faults, so task bodies should
/// call it between work slices.
class TaskContext {
 public:
  TaskContext(int rank, int task_id, std::function<void(double)> charge_fn,
              std::function<void()> progress_fn)
      : rank_(rank),
        task_id_(task_id),
        charge_fn_(std::move(charge_fn)),
        progress_fn_(std::move(progress_fn)) {}

  int rank() const { return rank_; }
  int task_id() const { return task_id_; }

  /// Charge `ops` abstract operations of modelled work (Sim transport;
  /// no-op on the host, where tasks do real work). Straggler faults
  /// scale this.
  void charge(double ops) {
    if (charge_fn_) {
      charge_fn_(ops);
    }
  }

  /// Heartbeat pacing point; call between work slices.
  void progress() {
    if (progress_fn_) {
      progress_fn_();
    }
  }

 private:
  int rank_;
  int task_id_;
  std::function<void(double)> charge_fn_;
  std::function<void()> progress_fn_;
};

/// A task body: consume the task's payload (a zero-copy view into the
/// assignment message, valid for the duration of the call), return its
/// result bytes. Runs on worker ranks (and inline on the master when
/// size == 1).
using TaskFn = std::function<std::vector<std::byte>(
    TaskContext&, int task_id, mp::ByteView payload)>;

/// What run_cluster_tasks returns on each rank.
struct ClusterRunResult {
  /// Per-task result bytes, indexed by task id; each entry shares the
  /// Done message's storage (no result copy on the master). Master only.
  std::vector<mp::Buffer> results;
  /// Ranks the master declared dead and never heard from again.
  /// Master only.
  std::vector<int> dead_workers;
  bool is_master = false;
  /// This rank hit an injected crash fault (worker ranks only).
  bool crashed = false;
  /// The run was cancelled by ClusterOptions::job_deadline_s. On the
  /// master: the deadline fired with tasks outstanding. On a worker:
  /// this rank abandoned an in-flight attempt after receiving Cancel.
  bool job_cancelled = false;
  /// Ids of tasks without a result when a cancelled run wound down,
  /// ascending. Master only; empty on uncancelled runs.
  std::vector<int> incomplete_tasks;
};

/// How the engine reads the clock and charges modelled work on each
/// transport. now() is seconds on the transport's clock.
template <class CommT>
struct TransportTraits;

template <>
struct TransportTraits<mp::Comm> {
  static constexpr rt::TraceClock kClock = rt::TraceClock::HostSteady;
  static double now(mp::Comm&) {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  // Host tasks do real work; modelled charges are meaningless.
  static void charge_ops(mp::Comm&, double) {}
  static void charge_seconds(mp::Comm&, double) {}
};

template <>
struct TransportTraits<mp::SimComm> {
  static constexpr rt::TraceClock kClock = rt::TraceClock::SimVirtual;
  static double now(mp::SimComm& comm) { return comm.context().now(); }
  static void charge_ops(mp::SimComm& comm, double ops) {
    if (ops > 0.0) {
      comm.context().compute(ops);
    }
  }
  static void charge_seconds(mp::SimComm& comm, double seconds) {
    if (seconds > 0.0) {
      comm.context().compute(
          comm.context().spec().us_to_ops(seconds * 1e6));
    }
  }
};

/// The reliability wrapper keeps the wrapped transport's clock and
/// charging model.
template <class CommT>
struct TransportTraits<ReliableComm<CommT>> {
  static constexpr rt::TraceClock kClock = TransportTraits<CommT>::kClock;
  static double now(ReliableComm<CommT>& comm) {
    return TransportTraits<CommT>::now(comm.underlying());
  }
  static void charge_ops(ReliableComm<CommT>& comm, double ops) {
    TransportTraits<CommT>::charge_ops(comm.underlying(), ops);
  }
  static void charge_seconds(ReliableComm<CommT>& comm, double seconds) {
    TransportTraits<CommT>::charge_seconds(comm.underlying(), seconds);
  }
};

namespace detail {

/// Engine protocol tags, far above any user tag and distinct from the
/// negative internal collective tags.
constexpr int kTagRequest = (1 << 20) + 0;    // worker -> master, empty
constexpr int kTagDone = (1 << 20) + 1;       // worker -> master
constexpr int kTagHeartbeat = (1 << 20) + 2;  // worker -> master
constexpr int kTagAssign = (1 << 20) + 3;     // master -> worker
constexpr int kTagShutdown = (1 << 20) + 4;   // master -> worker, empty
constexpr int kTagCancel = (1 << 20) + 5;     // master -> worker, empty

inline std::size_t engine_payload_hash() {
  return mp::type_hash_of<std::vector<std::byte>>();
}

/// Internal unwinding signal for an injected worker crash. Caught by
/// run_worker; never escapes the engine.
struct WorkerCrashSignal {};

/// Internal unwinding signal for a cooperative job cancellation: the
/// worker saw the master's Cancel at a progress() poll and abandons the
/// attempt at that boundary. Caught by run_worker; never escapes.
struct WorkerCancelSignal {};

template <class CommT>
void send_request(CommT& comm) {
  comm.send_raw(0, kTagRequest, engine_payload_hash(), {});
}

template <class CommT>
void send_heartbeat(CommT& comm, int task_id, std::uint64_t claim) {
  Writer writer;
  writer.i32(task_id);
  writer.u64(claim);
  // Heartbeats are periodic liveness hints: a lost one is replaced by
  // the next, so on a reliable transport they ride fire-and-forget
  // rather than consuming ack/retransmit budget.
  if constexpr (requires {
                  comm.send_raw_fire_and_forget(0, kTagHeartbeat,
                                                engine_payload_hash(),
                                                writer.take());
                }) {
    comm.send_raw_fire_and_forget(0, kTagHeartbeat, engine_payload_hash(),
                                  writer.take());
  } else {
    comm.send_raw(0, kTagHeartbeat, engine_payload_hash(), writer.take());
  }
}

template <class CommT>
void send_done(CommT& comm, int task_id, std::uint64_t claim,
               const std::vector<std::byte>& result) {
  Writer writer;
  writer.i32(task_id);
  writer.u64(claim);
  writer.blob(result);
  comm.send_raw(0, kTagDone, engine_payload_hash(), writer.take());
}

template <class CommT>
void send_assign(CommT& comm, int worker, int task_id, std::uint64_t claim,
                 const std::vector<std::byte>& payload) {
  Writer writer;
  writer.i32(task_id);
  writer.u64(claim);
  writer.blob(payload);
  comm.send_raw(worker, kTagAssign, engine_payload_hash(), writer.take());
}

template <class CommT>
void send_shutdown(CommT& comm, int worker) {
  comm.send_raw(worker, kTagShutdown, engine_payload_hash(), {});
}

template <class CommT>
void send_cancel(CommT& comm, int worker) {
  comm.send_raw(worker, kTagCancel, engine_payload_hash(), {});
}

struct TaskHeader {
  int task_id = -1;
  std::uint64_t claim = 0;
};

inline TaskHeader parse_header(Reader& reader) {
  TaskHeader header;
  header.task_id = reader.i32();
  header.claim = reader.u64();
  return header;
}

/// Master-side state machine. Pull-based: workers Request, the master
/// replies Assign (possibly much later) or Shutdown; Done and Heartbeat
/// flow back. A Request from a worker the master believes busy means the
/// worker's Done was lost — the task is re-queued. Silence past the
/// heartbeat timeout means the worker is dead.
template <class CommT>
class Master {
 public:
  using Traits = TransportTraits<CommT>;

  Master(CommT& comm, const std::vector<std::vector<std::byte>>& tasks,
         const ClusterOptions& options, ClusterProfile* profile)
      : comm_(comm), tasks_(tasks), options_(options), profile_(profile) {
    options.validate();
  }

  ClusterRunResult run(const TaskFn& task_fn) {
    const int n = static_cast<int>(tasks_.size());
    const int size = comm_.size();
    start_s_ = Traits::now(comm_);
    results_.assign(static_cast<std::size_t>(n), {});
    task_states_.assign(static_cast<std::size_t>(n), TaskState{});
    workers_.assign(static_cast<std::size_t>(size), WorkerState{});
    remaining_ = n;
    stats_.tasks = n;
    stats_.workers = size - 1;
    if (profile_ != nullptr) {
      recorder_ = std::make_unique<rt::TraceRecorder>(size, Traits::kClock);
      recorder_->register_loop(0, "cluster", n);
    }
    restore_checkpoint();

    if (size == 1) {
      run_serial(task_fn);
    } else {
      for (int t = 0; t < n; ++t) {
        if (!task_states_[static_cast<std::size_t>(t)].done) {
          queue_.push_back(t);
        }
      }
      run_loop();
      // A worker written off as dead may really be alive — a straggler
      // that outlived the whole run. Send it a shutdown too: a crashed
      // worker never reads it, a zombie uses it to leave the protocol
      // and rejoin the SPMD code after the engine.
      for (int w = 1; w < size; ++w) {
        if (workers_[static_cast<std::size_t>(w)].phase == WPhase::Dead) {
          send_shutdown(comm_, w);
        }
      }
    }

    ClusterRunResult result;
    if (cancelled_) {
      // A straggler's Done can still land between the deadline firing
      // and the drain completing, so incompleteness is judged only now.
      for (int t = 0; t < n; ++t) {
        if (!task_states_[static_cast<std::size_t>(t)].done) {
          result.incomplete_tasks.push_back(t);
        }
      }
      stats_.cancelled_tasks =
          static_cast<int>(result.incomplete_tasks.size());
    }
    // Wind-down checkpoint: capture every result that arrived (even on a
    // cancelled run), so a master killed right after this run resumes
    // with nothing lost.
    maybe_checkpoint(now_rel(), /*force=*/true);
    finalize_profile();
    result.results = std::move(results_);
    result.dead_workers = dead_list();
    result.is_master = true;
    result.job_cancelled = cancelled_;
    return result;
  }

 private:
  enum class WPhase {
    Unknown,       // never heard from (exempt from timeouts)
    Parked,        // sent Request, blocked waiting for our reply
    Busy,          // executing an assignment
    Returning,     // sent Done, its next Request is in flight
    Dead,          // timed out; resurrected if it ever speaks again
    ShutdownSent,  // told to exit
  };

  struct Attempt {
    int worker = -1;
    std::uint64_t claim = 0;
    double assigned_s = 0.0;
    bool live = false;
    bool speculative = false;
  };

  struct TaskState {
    std::vector<Attempt> attempts;
    bool done = false;
    bool queued = false;
  };

  struct WorkerState {
    WPhase phase = WPhase::Unknown;
    int task = -1;
    std::uint64_t claim = 0;
    double last_heard_s = 0.0;
  };

  double now_rel() { return Traits::now(comm_) - start_s_; }

  void event(double t_s, int worker, int task, std::uint64_t claim,
             const char* kind) {
    if (profile_ != nullptr) {
      profile_->events.push_back(ClusterEvent{t_s, worker, task, claim, kind});
    }
  }

  /// Resume from ClusterOptions::restart_from: mark recorded tasks done
  /// (copying their result bytes out of the checkpoint) so they are
  /// never queued. One "restore" event per task, at t=0.
  void restore_checkpoint() {
    if (options_.restart_from == nullptr || options_.restart_from->empty()) {
      return;
    }
    Reader reader(options_.restart_from->bytes);
    util::require(reader.u32() == kCheckpointMagic,
                  "cluster master: restart_from is not a checkpoint");
    util::require(reader.u32() == kCheckpointVersion,
                  "cluster master: restart_from checkpoint version mismatch");
    const int n = static_cast<int>(reader.u32());
    util::require(n == static_cast<int>(tasks_.size()),
                  "cluster master: restart_from checkpoint describes a "
                  "different task list (task_count mismatch)");
    const int done = static_cast<int>(reader.u32());
    for (int i = 0; i < done; ++i) {
      const int task = reader.i32();
      const mp::ByteView blob = reader.blob_view();
      util::require(task >= 0 && task < n,
                    "cluster master: restart_from checkpoint has an "
                    "out-of-range task id");
      TaskState& ts = task_states_[static_cast<std::size_t>(task)];
      util::require(!ts.done,
                    "cluster master: restart_from checkpoint records task " +
                        std::to_string(task) + " done twice");
      ts.done = true;
      results_[static_cast<std::size_t>(task)] =
          mp::Buffer::copy_of(blob.data(), blob.size());
      --remaining_;
      ++stats_.restored_tasks;
      event(0.0, -1, task, 0, "restore");
    }
    checkpointed_done_ = done;
  }

  int done_count() const {
    return static_cast<int>(tasks_.size()) - remaining_;
  }

  ClusterCheckpoint make_checkpoint() const {
    Writer writer;
    writer.u32(kCheckpointMagic);
    writer.u32(kCheckpointVersion);
    writer.u32(static_cast<std::uint32_t>(tasks_.size()));
    writer.u32(static_cast<std::uint32_t>(done_count()));
    for (int t = 0; t < static_cast<int>(tasks_.size()); ++t) {
      const TaskState& ts = task_states_[static_cast<std::size_t>(t)];
      if (!ts.done) {
        continue;
      }
      writer.i32(t);
      const mp::Buffer& result = results_[static_cast<std::size_t>(t)];
      writer.blob(result.view());
    }
    ClusterCheckpoint checkpoint;
    checkpoint.bytes = writer.take();
    return checkpoint;
  }

  /// Serialize completed-task state when the interval elapsed and new
  /// results arrived since the last snapshot (`force` skips both checks
  /// for the wind-down capture — but still never emits an empty
  /// zero-progress checkpoint on an unarmed run).
  void maybe_checkpoint(double now, bool force = false) {
    if (options_.checkpoint_interval_s <= 0.0) {
      return;
    }
    const int done = done_count();
    if (done <= checkpointed_done_) {
      return;  // nothing new to capture
    }
    if (!force && now - last_checkpoint_s_ < options_.checkpoint_interval_s) {
      return;
    }
    last_checkpoint_s_ = now;
    checkpointed_done_ = done;
    ++stats_.checkpoints;
    event(now, -1, -1, static_cast<std::uint64_t>(done), "checkpoint");
    if (options_.on_checkpoint != nullptr) {
      options_.on_checkpoint(make_checkpoint());
    }
  }

  void run_serial(const TaskFn& task_fn) {
    // Single-rank world: the master executes every task inline. The job
    // deadline is honoured between tasks — the inline task body has no
    // Cancel channel to poll.
    const int n = static_cast<int>(tasks_.size());
    for (int t = 0; t < n; ++t) {
      if (task_states_[static_cast<std::size_t>(t)].done) {
        continue;  // restored from a checkpoint
      }
      const bool deadline_hit = options_.job_deadline_s > 0.0 &&
                                now_rel() >= options_.job_deadline_s;
      const bool token_hit = options_.cancel.cancel_requested();
      if (deadline_hit || token_hit) {
        cancelled_ = true;
        event(now_rel(), -1, -1, 0,
              deadline_hit ? "job-deadline" : "job-cancel");
        return;
      }
      maybe_checkpoint(now_rel());
      const std::uint64_t claim = ++claim_seq_;
      const double begin_s = now_rel();
      event(begin_s, 0, t, claim, "assign");
      ++stats_.attempts;
      TaskContext ctx(
          0, t, [this](double ops) { Traits::charge_ops(comm_, ops); },
          [] {});
      results_[static_cast<std::size_t>(t)] =
          task_fn(ctx, t, mp::ByteView(tasks_[static_cast<std::size_t>(t)]));
      task_states_[static_cast<std::size_t>(t)].done = true;
      --remaining_;
      const double end_s = now_rel();
      event(end_s, 0, t, claim, "done");
      if (recorder_ != nullptr) {
        recorder_->record_chunk(0, 0, t, t + 1, claim, begin_s, end_s);
      }
    }
    stats_.completion_s = now_rel();
  }

  void run_loop() {
    const double tick = options_.effective_tick_s();
    for (;;) {
      mp::RawMessage msg;
      const bool got =
          comm_.recv_raw_timed(mp::kAnySource, mp::kAnyTag, tick, &msg);
      const double now = now_rel();
      if (got) {
        dispatch(msg, now);
      }
      maybe_cancel(now);
      maybe_checkpoint(now);
      check_timeouts(now);
      drive_idle(now);
      if (remaining_ == 0 && stats_.completion_s == 0.0 &&
          stats_.tasks > 0) {
        stats_.completion_s = now;
        event(now, -1, -1, 0, "all-done");
      }
      if (finished()) {
        return;
      }
      check_liveness(now);
    }
  }

  /// Fire the job cancellation once — deadline passed or CancelToken
  /// tripped: drop the queue, cancel busy workers, shut down parked
  /// ones. From here on the loop only drains — no assignment, no
  /// requeue, no all-dead error.
  void maybe_cancel(double now) {
    if (cancelled_ || remaining_ == 0) {
      return;
    }
    const bool deadline_hit =
        options_.job_deadline_s > 0.0 && now >= options_.job_deadline_s;
    const bool token_hit = options_.cancel.cancel_requested();
    if (!deadline_hit && !token_hit) {
      return;
    }
    cancelled_ = true;
    event(now, -1, -1, 0, deadline_hit ? "job-deadline" : "job-cancel");
    for (const int task : queue_) {
      task_states_[static_cast<std::size_t>(task)].queued = false;
    }
    queue_.clear();
    for (int w = 1; w < comm_.size(); ++w) {
      WorkerState& ws = workers_[static_cast<std::size_t>(w)];
      if (ws.phase == WPhase::Busy) {
        send_cancel(comm_, w);
        event(now, w, ws.task, ws.claim, "cancel");
      } else if (ws.phase == WPhase::Parked) {
        send_shutdown(comm_, w);
        ws.phase = WPhase::ShutdownSent;
        event(now, w, -1, 0, "shutdown");
      }
      // Unknown and Returning workers get their Shutdown when their
      // next Request arrives; Dead ones are swept after run_loop.
    }
  }

  bool finished() const {
    if (remaining_ > 0 && !cancelled_) {
      return false;
    }
    for (int w = 1; w < comm_.size(); ++w) {
      const WPhase phase = workers_[static_cast<std::size_t>(w)].phase;
      if (phase != WPhase::Dead && phase != WPhase::ShutdownSent) {
        return false;
      }
    }
    return true;
  }

  void dispatch(const mp::RawMessage& msg, double now) {
    const int w = msg.source;
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    ws.last_heard_s = now;
    switch (msg.tag) {
      case kTagRequest: {
        if (ws.phase == WPhase::Dead) {
          resurrect(w, now);
        } else if (ws.phase == WPhase::Busy) {
          if (cancelled_) {
            // The worker abandoned its attempt at a progress() poll
            // after our Cancel — the expected drain handshake, not a
            // lost result.
            event(now, w, ws.task, ws.claim, "cancel-drain");
            end_attempt(ws.task, ws.claim, now);
          } else {
            // A busy worker asking for work means its Done never
            // reached us: the result is lost, the attempt is void.
            ++stats_.lost_results;
            event(now, w, ws.task, ws.claim, "lost-result");
            end_attempt(ws.task, ws.claim, now);
            requeue_if_needed(ws.task, now, /*front=*/true);
          }
        }
        ws.phase = WPhase::Parked;
        ws.task = -1;
        try_assign(w, now);
        break;
      }
      case kTagDone: {
        Reader reader(msg.payload);
        const TaskHeader header = parse_header(reader);
        // Keep the result as a zero-copy slice of the Done message.
        const std::uint32_t result_len = reader.u32();
        mp::Buffer result = msg.payload.slice(reader.pos(), result_len);
        if (ws.phase == WPhase::Dead) {
          resurrect(w, now);
        }
        end_attempt(header.task_id, header.claim, now);
        TaskState& ts = task_states_[static_cast<std::size_t>(header.task_id)];
        if (!ts.done) {
          ts.done = true;
          results_[static_cast<std::size_t>(header.task_id)] =
              std::move(result);
          --remaining_;
          event(now, w, header.task_id, header.claim, "done");
          // Backups of a finished task are superseded: first finisher
          // wins, later results are recorded as duplicates.
          for (Attempt& attempt : ts.attempts) {
            if (attempt.live) {
              end_attempt(header.task_id, attempt.claim, now);
            }
          }
        } else {
          event(now, w, header.task_id, header.claim, "dup-done");
        }
        ws.phase = WPhase::Returning;
        ws.task = -1;
        break;
      }
      case kTagHeartbeat: {
        Reader reader(msg.payload);
        const TaskHeader header = parse_header(reader);
        ++stats_.heartbeats;
        event(now, w, header.task_id, header.claim, "heartbeat");
        if (ws.phase == WPhase::Dead) {
          resurrect(w, now);
          // It is still crunching the task we wrote off; let it run as a
          // (possibly duplicated) live attempt again.
          TaskState& ts =
              task_states_[static_cast<std::size_t>(header.task_id)];
          if (!ts.done) {
            for (Attempt& attempt : ts.attempts) {
              if (attempt.claim == header.claim) {
                attempt.live = true;
              }
            }
          }
          ws.phase = WPhase::Busy;
          ws.task = header.task_id;
          ws.claim = header.claim;
        }
        break;
      }
      default:
        throw ClusterError("cluster master: unexpected tag " +
                           std::to_string(msg.tag) + " from rank " +
                           std::to_string(w));
    }
  }

  void resurrect(int w, double now) {
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    ws.phase = WPhase::Parked;
    ++stats_.resurrections;
    --stats_.dead_workers;
    dead_.erase(std::remove(dead_.begin(), dead_.end(), w), dead_.end());
    event(now, w, -1, 0, "worker-back");
  }

  /// Mark the attempt identified by (task, claim) finished/void and
  /// record its lane segment in the schedule trace.
  void end_attempt(int task, std::uint64_t claim, double now) {
    if (task < 0 || task >= static_cast<int>(task_states_.size())) {
      return;
    }
    TaskState& ts = task_states_[static_cast<std::size_t>(task)];
    for (Attempt& attempt : ts.attempts) {
      if (attempt.claim == claim && attempt.live) {
        attempt.live = false;
        if (recorder_ != nullptr) {
          recorder_->record_chunk(attempt.worker, 0, task, task + 1, claim,
                                  attempt.assigned_s, now);
        }
      }
    }
  }

  void requeue_if_needed(int task, double now, bool front) {
    if (cancelled_) {
      return;  // nothing is re-executed after the job deadline
    }
    TaskState& ts = task_states_[static_cast<std::size_t>(task)];
    if (ts.done || ts.queued) {
      return;
    }
    for (const Attempt& attempt : ts.attempts) {
      if (attempt.live) {
        return;  // a backup is still running it
      }
    }
    if (static_cast<int>(ts.attempts.size()) >=
        options_.max_attempts_per_task) {
      throw ClusterError("cluster master: task " + std::to_string(task) +
                         " failed after " +
                         std::to_string(ts.attempts.size()) +
                         " attempts (max_attempts_per_task)");
    }
    if (front) {
      queue_.push_front(task);
    } else {
      queue_.push_back(task);
    }
    ts.queued = true;
    ++stats_.requeues;
    event(now, -1, task, 0, "requeue");
  }

  void check_timeouts(double now) {
    for (int w = 1; w < comm_.size(); ++w) {
      WorkerState& ws = workers_[static_cast<std::size_t>(w)];
      const bool expected_to_talk =
          ws.phase == WPhase::Busy || ws.phase == WPhase::Returning;
      if (expected_to_talk &&
          now - ws.last_heard_s > options_.heartbeat_timeout_s) {
        const int task = ws.task;
        const std::uint64_t claim = ws.claim;
        ws.phase = WPhase::Dead;
        ws.task = -1;
        ++stats_.dead_workers;
        dead_.push_back(w);
        event(now, w, task, claim, "worker-dead");
        if (task >= 0) {
          end_attempt(task, claim, now);
          requeue_if_needed(task, now, /*front=*/true);
        }
      }
    }
    if (options_.task_timeout_s > 0.0) {
      for (int t = 0; t < static_cast<int>(task_states_.size()); ++t) {
        TaskState& ts = task_states_[static_cast<std::size_t>(t)];
        if (ts.done) {
          continue;
        }
        for (Attempt& attempt : ts.attempts) {
          if (attempt.live &&
              now - attempt.assigned_s > options_.task_timeout_s) {
            event(now, attempt.worker, t, attempt.claim, "task-timeout");
            end_attempt(t, attempt.claim, now);
          }
        }
        requeue_if_needed(t, now, /*front=*/true);
      }
    }
  }

  /// Hand work to every parked worker: queued tasks first, then
  /// speculative duplicates of in-flight tasks, then (once everything is
  /// done) shutdowns.
  void drive_idle(double now) {
    for (int w = 1; w < comm_.size(); ++w) {
      if (workers_[static_cast<std::size_t>(w)].phase == WPhase::Parked) {
        try_assign(w, now);
      }
    }
  }

  void try_assign(int w, double now) {
    if (cancelled_) {
      // Every worker that reports in after the deadline leaves the
      // protocol; the queue was already dropped by maybe_cancel.
      send_shutdown(comm_, w);
      workers_[static_cast<std::size_t>(w)].phase = WPhase::ShutdownSent;
      event(now, w, -1, 0, "shutdown");
      return;
    }
    if (!queue_.empty()) {
      const int task = queue_.front();
      queue_.pop_front();
      task_states_[static_cast<std::size_t>(task)].queued = false;
      assign(w, task, /*speculative=*/false, now);
      return;
    }
    if (remaining_ == 0) {
      send_shutdown(comm_, w);
      workers_[static_cast<std::size_t>(w)].phase = WPhase::ShutdownSent;
      event(now, w, -1, 0, "shutdown");
      return;
    }
    // Speculation: duplicate the oldest in-flight task that is not
    // already at its live-attempt cap.
    int candidate = -1;
    double oldest = std::numeric_limits<double>::infinity();
    for (int t = 0; t < static_cast<int>(task_states_.size()); ++t) {
      const TaskState& ts = task_states_[static_cast<std::size_t>(t)];
      if (ts.done || ts.queued) {
        continue;
      }
      int live = 0;
      double first_assigned = std::numeric_limits<double>::infinity();
      for (const Attempt& attempt : ts.attempts) {
        if (attempt.live) {
          ++live;
          first_assigned = std::min(first_assigned, attempt.assigned_s);
        }
      }
      if (live >= 1 && live < options_.max_live_attempts &&
          now - first_assigned >= options_.speculation_age_s &&
          first_assigned < oldest) {
        oldest = first_assigned;
        candidate = t;
      }
    }
    if (candidate >= 0) {
      assign(w, candidate, /*speculative=*/true, now);
    }
    // Otherwise the worker stays parked; it gets work on the next
    // requeue or a shutdown once the run completes.
  }

  void assign(int w, int task, bool speculative, double now) {
    TaskState& ts = task_states_[static_cast<std::size_t>(task)];
    if (static_cast<int>(ts.attempts.size()) >=
        options_.max_attempts_per_task) {
      throw ClusterError("cluster master: task " + std::to_string(task) +
                         " failed after " +
                         std::to_string(ts.attempts.size()) +
                         " attempts (max_attempts_per_task)");
    }
    const std::uint64_t claim = ++claim_seq_;
    ts.attempts.push_back(Attempt{w, claim, now, true, speculative});
    WorkerState& ws = workers_[static_cast<std::size_t>(w)];
    ws.phase = WPhase::Busy;
    ws.task = task;
    ws.claim = claim;
    ws.last_heard_s = now;
    ++stats_.attempts;
    if (speculative) {
      ++stats_.speculative_attempts;
    }
    event(now, w, task, claim, speculative ? "spec-assign" : "assign");
    send_assign(comm_, w, task, claim, tasks_[static_cast<std::size_t>(task)]);
  }

  void check_liveness(double now) {
    if (remaining_ == 0 || cancelled_) {
      return;
    }
    for (int w = 1; w < comm_.size(); ++w) {
      const WPhase phase = workers_[static_cast<std::size_t>(w)].phase;
      if (phase != WPhase::Dead) {
        return;  // someone can still make progress (or might show up)
      }
    }
    std::ostringstream detail;
    detail << "cluster master: all " << (comm_.size() - 1)
           << " worker(s) dead with " << remaining_
           << " task(s) outstanding:";
    for (int t = 0; t < static_cast<int>(task_states_.size()); ++t) {
      if (!task_states_[static_cast<std::size_t>(t)].done) {
        detail << " " << t;
      }
    }
    detail << " (t=" << now << "s)";
    throw ClusterError(detail.str());
  }

  std::vector<int> dead_list() const {
    std::vector<int> dead = dead_;
    std::sort(dead.begin(), dead.end());
    return dead;
  }

  void finalize_profile() {
    stats_.makespan_s = now_rel();
    if (profile_ == nullptr) {
      return;
    }
    profile_->stats = stats_;
    profile_->dead_workers = dead_list();
    if (recorder_ != nullptr) {
      profile_->schedule = std::make_shared<const rt::RunProfile>(
          recorder_->finish(stats_.makespan_s));
    }
  }

  CommT& comm_;
  const std::vector<std::vector<std::byte>>& tasks_;
  ClusterOptions options_;
  ClusterProfile* profile_;

  std::vector<mp::Buffer> results_;
  std::vector<TaskState> task_states_;
  std::vector<WorkerState> workers_;
  std::deque<int> queue_;
  std::vector<int> dead_;
  ClusterStats stats_;
  std::unique_ptr<rt::TraceRecorder> recorder_;
  std::uint64_t claim_seq_ = 0;
  int remaining_ = 0;
  double start_s_ = 0.0;
  bool cancelled_ = false;
  double last_checkpoint_s_ = 0.0;
  int checkpointed_done_ = 0;
};

/// Worker side: pull work, execute, report, heartbeat. Returns true if
/// an injected crash fault fired (the rank silently left the protocol).
/// Sets *job_cancelled when the worker abandoned an attempt after a
/// master Cancel (job deadline).
template <class CommT>
bool run_worker(CommT& comm, const TaskFn& task_fn,
                const ClusterOptions& options, const FaultPlan* faults,
                bool* job_cancelled) {
  using Traits = TransportTraits<CommT>;
  const int rank = comm.rank();
  // Polling the Cancel channel costs a scheduler yield per progress()
  // call on the Sim transport, so it is armed only when the run can
  // actually be cancelled (a deadline is set or a CancelToken is
  // connected) — uncancellable runs stay byte-identical.
  const bool cancellable =
      options.job_deadline_s > 0.0 || options.cancel.valid();
  const CrashFault* crash = faults ? faults->crash_for(rank) : nullptr;
  const double slowdown = faults ? faults->slowdown_for(rank) : 1.0;
  const bool jitter = faults != nullptr && faults->delay_jitter_s > 0.0;
  util::Rng delay_rng(jitter ? faults->seed ^
                                   (0x9E3779B97F4A7C15ULL *
                                    static_cast<std::uint64_t>(rank + 1))
                             : 0);
  auto maybe_delay = [&] {
    if (jitter) {
      Traits::charge_seconds(comm,
                             delay_rng.uniform(0.0, faults->delay_jitter_s));
    }
  };

  int started_tasks = 0;
  int done_sent = 0;
  try {
    for (;;) {
      maybe_delay();
      detail::send_request(comm);
      mp::RawMessage msg;
      do {
        // A Cancel that raced our Done (or one consumed by nobody
        // because the attempt finished first) may still sit in the
        // inbox; the master always follows it with a Shutdown, so
        // stale Cancels are simply discarded here.
        msg = comm.recv_raw(0, mp::kAnyTag);
      } while (msg.tag == detail::kTagCancel);
      if (msg.tag == detail::kTagShutdown) {
        return false;
      }
      util::ensure(msg.tag == detail::kTagAssign,
                   "cluster worker: unexpected tag from master");
      Reader reader(msg.payload);
      const detail::TaskHeader header = detail::parse_header(reader);
      // Zero-copy: the task body reads the payload straight out of the
      // assignment message (msg stays alive across the call).
      const mp::ByteView payload = reader.blob_view();

      const bool crash_this =
          crash != nullptr && started_tasks == crash->nth_task;
      ++started_tasks;
      double last_heartbeat_s = Traits::now(comm);
      TaskContext ctx(
          rank, header.task_id,
          [&](double ops) { Traits::charge_ops(comm, ops * slowdown); },
          [&] {
            if (crash_this) {
              throw detail::WorkerCrashSignal{};
            }
            if (cancellable) {
              mp::RawMessage cancel_msg;
              if (comm.recv_raw_timed(0, detail::kTagCancel, 0.0,
                                      &cancel_msg)) {
                throw detail::WorkerCancelSignal{};
              }
            }
            const double now = Traits::now(comm);
            if (now - last_heartbeat_s >= options.heartbeat_interval_s) {
              maybe_delay();
              detail::send_heartbeat(comm, header.task_id, header.claim);
              last_heartbeat_s = Traits::now(comm);
            }
          });
      std::vector<std::byte> result = task_fn(ctx, header.task_id, payload);
      if (crash_this) {
        // The task body never called progress(): still crash before the
        // result escapes, so the failure is observable.
        throw detail::WorkerCrashSignal{};
      }
      const bool drop =
          faults != nullptr && faults->should_drop(rank, done_sent);
      ++done_sent;
      if (!drop) {
        maybe_delay();
        detail::send_done(comm, header.task_id, header.claim, result);
      }
    }
  } catch (const detail::WorkerCrashSignal&) {
    // Fail-stop: abandon the protocol. The rank's thread lives on so
    // SPMD code after the engine (collectives) still runs.
    return true;
  } catch (const detail::WorkerCancelSignal&) {
    // Cooperative stop at a progress() boundary. Tell the master the
    // attempt is abandoned (a Request from a busy worker) and wait for
    // the Shutdown it answers a cancelled worker with.
    detail::send_request(comm);
    for (;;) {
      const mp::RawMessage msg = comm.recv_raw(0, mp::kAnyTag);
      if (msg.tag == detail::kTagShutdown) {
        break;
      }
    }
    if (job_cancelled != nullptr) {
      *job_cancelled = true;
    }
    return false;
  }
}

}  // namespace detail

/// Run a batch of tasks on the master–worker engine. SPMD: every rank of
/// the communicator calls this with the same arguments; rank 0 becomes
/// the master (it schedules, it does not execute tasks — except in a
/// single-rank world, where it runs everything inline), every other rank
/// becomes a worker. Returns per-task results on the master; workers get
/// an empty result set (check `crashed` for injected failures).
///
/// Fault tolerance: tasks lost to dead or silent workers are re-queued
/// and re-executed; stragglers are speculatively duplicated onto idle
/// workers, first finisher wins. Failures to recover from (all workers
/// dead, attempt budget exhausted) throw ClusterError on the master.
template <class CommT>
ClusterRunResult run_cluster_tasks(
    CommT& comm, const std::vector<std::vector<std::byte>>& tasks,
    const TaskFn& task_fn, const ClusterOptions& options = {},
    const FaultPlan* faults = nullptr, ClusterProfile* profile = nullptr) {
  util::require(task_fn != nullptr,
                "run_cluster_tasks: task body must be callable");
  options.validate();
  if (faults != nullptr) {
    faults->validate();
  }
  // Reliability wrapper: when the ack/retry sublayer is requested and the
  // caller handed us a bare transport, wrap it once and recurse — the
  // constexpr guard keeps an already-wrapped comm (e.g. from the
  // distributed MapReduce driver, which wraps for the whole job so the
  // collectives after the engine share the same sequence state) from
  // being wrapped twice.
  if constexpr (!is_reliable_comm_v<CommT>) {
    if (options.reliability.enabled) {
      ReliableComm<CommT> reliable(comm, options.reliability);
      ClusterRunResult result = run_cluster_tasks(reliable, tasks, task_fn,
                                                  options, faults, profile);
      if (!result.crashed) {
        // Drain unacked sends before the wrapper dies; a crashed worker
        // is fail-stop and must not linger retransmitting.
        reliable.flush();
      }
      if (profile != nullptr && comm.rank() == 0) {
        profile->retry = reliable.retry_stats();
      }
      return result;
    }
  }
  if (comm.rank() == 0) {
    detail::Master<CommT> master(comm, tasks, options, profile);
    ClusterRunResult result = master.run(task_fn);
    if (profile != nullptr) {
      // Snapshot every rank's outbound wire counters into the profile
      // schema (zombie stragglers may still add a little after this).
      profile->wire_messages.clear();
      profile->wire_bytes.clear();
      for (int r = 0; r < comm.size(); ++r) {
        const mp::WireStats wire = comm.wire_stats(r);
        profile->wire_messages.push_back(wire.messages);
        profile->wire_bytes.push_back(wire.bytes);
      }
    }
    return result;
  }
  ClusterRunResult result;
  result.crashed = detail::run_worker(comm, task_fn, options, faults,
                                      &result.job_cancelled);
  return result;
}

/// Everything a deterministic simulated engine run produces.
struct SimClusterRun {
  std::vector<mp::Buffer> results;
  std::vector<int> dead_workers;
  /// Master-side job-deadline outcome (see ClusterRunResult).
  bool job_cancelled = false;
  std::vector<int> incomplete_tasks;
  ClusterProfile profile;
  mp::ClusterReport report;
};

/// Convenience wrapper: run `tasks` on a simulated Pi cluster of
/// `nodes` ranks (rank 0 = master, nodes-1 workers) and return results,
/// profile and the machine report. Deterministic: equal inputs, options,
/// fault plan and spec give bit-identical outcomes. A simulated deadlock
/// (which a correct engine run never produces) is rethrown as
/// ClusterError.
SimClusterRun run_sim_cluster(int nodes,
                              const std::vector<std::vector<std::byte>>& tasks,
                              const TaskFn& task_fn,
                              const ClusterOptions& options = {},
                              const FaultPlan* faults = nullptr,
                              mp::ClusterSpec spec = {});

}  // namespace pblpar::cluster
