#include "drugdesign/drugdesign.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/engine.hpp"
#include "cluster/wire.hpp"
#include "mapreduce/job.hpp"
#include "rt/parallel.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

#include <chrono>

namespace pblpar::drugdesign {

namespace {

constexpr double kOpsPerRecursionUnit = 8.0;

std::vector<int> score_all_expected_size(const Config& config) {
  return std::vector<int>(static_cast<std::size_t>(config.num_ligands), -1);
}

Result finalize(const Config& config,
                const std::vector<std::string>& ligands,
                const std::vector<int>& scores) {
  Result result;
  result.best_score =
      *std::max_element(scores.begin(), scores.end());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] == result.best_score) {
      result.best_ligands.push_back(ligands[i]);
    }
  }
  util::ensure(!result.best_ligands.empty(),
               "drugdesign: no best ligand found");
  (void)config;
  return result;
}

struct Workload {
  std::vector<std::string> ligands;
  std::string protein;
};

Workload make_workload(const Config& config) {
  util::Rng rng(config.seed);
  Workload workload;
  workload.ligands =
      generate_ligands(config.num_ligands, config.max_ligand_len, rng);
  workload.protein = generate_protein(config.protein_len, rng);
  return workload;
}

}  // namespace

std::vector<std::string> generate_ligands(int count, int max_len,
                                          util::Rng& rng) {
  util::require(count >= 1, "generate_ligands: need at least one ligand");
  util::require(max_len >= 1, "generate_ligands: max_len must be positive");
  std::vector<std::string> ligands;
  ligands.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto length =
        static_cast<std::size_t>(rng.uniform_int(1, max_len));
    std::string ligand(length, 'a');
    for (char& ch : ligand) {
      ch = static_cast<char>('a' + rng.next_below(26));
    }
    ligands.push_back(std::move(ligand));
  }
  return ligands;
}

std::string generate_protein(int length, util::Rng& rng) {
  util::require(length >= 1, "generate_protein: length must be positive");
  std::string protein(static_cast<std::size_t>(length), 'a');
  for (char& ch : protein) {
    ch = static_cast<char>('a' + rng.next_below(26));
  }
  return protein;
}

int match_score(const std::string& ligand, const std::string& protein) {
  if (ligand.empty() || protein.empty()) {
    return 0;
  }
  // Two-row LCS dynamic program.
  std::vector<int> previous(protein.size() + 1, 0);
  std::vector<int> current(protein.size() + 1, 0);
  for (std::size_t i = 1; i <= ligand.size(); ++i) {
    for (std::size_t j = 1; j <= protein.size(); ++j) {
      if (ligand[i - 1] == protein[j - 1]) {
        current[j] = previous[j - 1] + 1;
      } else {
        current[j] = std::max(previous[j], current[j - 1]);
      }
    }
    std::swap(previous, current);
  }
  return previous[protein.size()];
}

double match_cost_ops(std::size_t ligand_len, std::size_t protein_len) {
  // The CSinParallel exemplar scores with a plain recursive LCS (no
  // memoization), whose cost explodes with ligand length — that is what
  // makes the workload irregular and the paper's "max ligand 5 -> 7"
  // sweep expensive. We compute scores with an equivalent O(m*n) DP but
  // charge the exemplar's ~n * 2^m recursion cost so the simulated
  // timings reproduce its scaling.
  return kOpsPerRecursionUnit * static_cast<double>(protein_len) *
         std::pow(2.0, static_cast<double>(ligand_len));
}

Result solve_sequential(const Config& config) {
  const Workload workload = make_workload(config);
  std::vector<int> scores = score_all_expected_size(config);

  sim::Machine machine(config.machine);
  const sim::ExecutionReport report = machine.run([&](sim::Context& root) {
    for (std::size_t i = 0; i < workload.ligands.size(); ++i) {
      scores[i] = match_score(workload.ligands[i], workload.protein);
      root.compute(match_cost_ops(workload.ligands[i].size(),
                                  workload.protein.size()),
                   0.1);
    }
  });

  Result result = finalize(config, workload.ligands, scores);
  result.elapsed_seconds = report.makespan_s;
  result.run.sim_report = report;
  return result;
}

Result solve_teachmp(const Config& config) {
  const Workload workload = make_workload(config);
  std::vector<int> scores = score_all_expected_size(config);

  rt::ParallelConfig parallel_config;
  parallel_config.backend = rt::BackendKind::Sim;
  parallel_config.num_threads = config.threads;
  parallel_config.machine = config.machine;

  rt::CostModel cost;
  cost.ops_fn = [&workload](std::int64_t i) {
    return match_cost_ops(
        workload.ligands[static_cast<std::size_t>(i)].size(),
        workload.protein.size());
  };
  cost.mem_intensity = 0.1;

  const rt::RunResult run = rt::parallel_for(
      parallel_config, rt::Range::upto(config.num_ligands), config.schedule,
      [&](std::int64_t i) {
        scores[static_cast<std::size_t>(i)] = match_score(
            workload.ligands[static_cast<std::size_t>(i)], workload.protein);
      },
      cost);

  Result result = finalize(config, workload.ligands, scores);
  result.elapsed_seconds = run.elapsed_seconds();
  result.run = run;
  return result;
}

Result solve_cxx11_threads(const Config& config) {
  const Workload workload = make_workload(config);
  std::vector<int> scores = score_all_expected_size(config);

  sim::Machine machine(config.machine);
  const int threads = config.threads;
  const auto n = static_cast<std::int64_t>(workload.ligands.size());

  const sim::ExecutionReport report = machine.run([&](sim::Context& root) {
    std::vector<sim::ThreadHandle> workers;
    for (int t = 0; t < threads; ++t) {
      workers.push_back(root.spawn([&, t](sim::Context& ctx) {
        // The naive student partition: fixed contiguous block per thread,
        // no balancing of the irregular ligand lengths.
        const std::int64_t begin = t * n / threads;
        const std::int64_t end = (t + 1) * n / threads;
        double block_ops = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          scores[static_cast<std::size_t>(i)] = match_score(
              workload.ligands[static_cast<std::size_t>(i)],
              workload.protein);
          block_ops += match_cost_ops(
              workload.ligands[static_cast<std::size_t>(i)].size(),
              workload.protein.size());
        }
        ctx.compute(block_ops, 0.1);
      }));
    }
    for (const sim::ThreadHandle worker : workers) {
      root.join(worker);
    }
  });

  Result result = finalize(config, workload.ligands, scores);
  result.elapsed_seconds = report.makespan_s;
  result.run.sim_report = report;
  return result;
}

Result solve_mapreduce(const Config& config) {
  const Workload workload = make_workload(config);

  std::vector<std::pair<int, std::string>> inputs;
  inputs.reserve(workload.ligands.size());
  for (std::size_t i = 0; i < workload.ligands.size(); ++i) {
    inputs.emplace_back(static_cast<int>(i), workload.ligands[i]);
  }

  // Warm the shared host pool before the clock starts: the measurement
  // should be the MapReduce pipeline, and repeated calls (the assignment
  // sweep's threads x ligand-length grid) should reuse one pool instead
  // of paying a spawn per cell.
  rt::warm_up(rt::ParallelConfig::host(
      config.threads > 0 ? config.threads : rt::hardware_threads()));

  const auto start = std::chrono::steady_clock::now();
  mapreduce::Job<int, std::string, int, std::string,
                 std::vector<std::string>>
      job;
  job.threads(config.threads)
      .map([&workload](const int&, const std::string& ligand,
                       mapreduce::Emitter<int, std::string>& out) {
        out.emit(match_score(ligand, workload.protein), ligand);
      })
      .reduce([](const int&, const std::vector<std::string>& ligands) {
        std::vector<std::string> sorted = ligands;
        std::sort(sorted.begin(), sorted.end());
        return sorted;
      });
  const auto by_score = job.run(inputs);
  const auto end = std::chrono::steady_clock::now();

  util::ensure(!by_score.empty(), "drugdesign: mapreduce produced nothing");
  Result result;
  result.best_score = by_score.back().first;  // sorted ascending by score
  result.best_ligands = by_score.back().second;
  result.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  result.run.host_seconds = result.elapsed_seconds;
  return result;
}

Result solve_cluster(const Config& config, int nodes,
                     const cluster::FaultPlan* faults,
                     cluster::ClusterProfile* profile) {
  util::require(nodes >= 2, "solve_cluster: need a master and a worker");
  const Workload workload = make_workload(config);

  // One task per ligand: the payload is the ligand's index, the result
  // its LCS score. The modelled cost is charged in slices with progress
  // points between, so a straggling worker heartbeats mid-ligand and a
  // crash can hit a task partway through.
  std::vector<std::vector<std::byte>> tasks;
  tasks.reserve(workload.ligands.size());
  for (std::size_t i = 0; i < workload.ligands.size(); ++i) {
    cluster::Writer writer;
    writer.i32(static_cast<std::int32_t>(i));
    tasks.push_back(writer.take());
  }

  const cluster::TaskFn task_fn =
      [&workload](cluster::TaskContext& ctx, int, mp::ByteView payload) {
        cluster::Reader reader(payload);
        const auto index = static_cast<std::size_t>(reader.i32());
        const std::string& ligand = workload.ligands[index];
        const int score = match_score(ligand, workload.protein);
        const double total_ops =
            match_cost_ops(ligand.size(), workload.protein.size());
        constexpr int kSlices = 4;
        for (int s = 0; s < kSlices; ++s) {
          ctx.charge(total_ops / kSlices);
          ctx.progress();
        }
        cluster::Writer writer;
        writer.i32(score);
        return writer.take();
      };

  mp::ClusterSpec spec;
  spec.node = config.machine;
  cluster::SimClusterRun run =
      cluster::run_sim_cluster(nodes, tasks, task_fn, {}, faults, spec);

  std::vector<int> scores = score_all_expected_size(config);
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    cluster::Reader reader(run.results[i]);
    scores[i] = reader.i32();
  }

  Result result = finalize(config, workload.ligands, scores);
  result.elapsed_seconds = run.profile.stats.makespan_s;
  if (profile != nullptr) {
    *profile = run.profile;
  }
  return result;
}

SourceLines exemplar_source_lines() {
  // Representative sizes of the CSinParallel exemplar's three student
  // programs (sequential, OpenMP, C++11 threads): the OpenMP version adds
  // a handful of pragmas to the sequential code, while the explicit
  // threads version adds thread management, partitioning, and result
  // merging.
  return SourceLines{118, 127, 164};
}

std::vector<ExperimentRow> run_assignment5_experiment(Config base) {
  std::vector<ExperimentRow> rows;
  const auto add_row = [&rows](const std::string& approach, int threads,
                               int max_len, const Result& result) {
    rows.push_back(ExperimentRow{approach, threads, max_len,
                                 result.elapsed_seconds,
                                 result.best_score});
  };

  for (const int max_len : {5, 7}) {
    Config config = base;
    config.max_ligand_len = max_len;

    add_row("sequential", 1, max_len, solve_sequential(config));
    for (const int threads : {4, 5}) {
      config.threads = threads;
      add_row("openmp (TeachMP)", threads, max_len, solve_teachmp(config));
      // Same TeachMP solution on the work-stealing schedule: the
      // irregular 2^len ligand costs are exactly the imbalance stealing
      // is built for.
      Config steal_config = config;
      steal_config.schedule = rt::Schedule::steal();
      add_row("teachmp steal", threads, max_len,
              solve_teachmp(steal_config));
      add_row("c++11 threads", threads, max_len,
              solve_cxx11_threads(config));
    }
  }
  return rows;
}

}  // namespace pblpar::drugdesign
