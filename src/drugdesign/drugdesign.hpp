#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/config.hpp"
#include "rt/schedule.hpp"
#include "util/rng.hpp"

namespace pblpar::cluster {
struct FaultPlan;
struct ClusterProfile;
}  // namespace pblpar::cluster

namespace pblpar::drugdesign {

/// The Drug Design / DNA exemplar of the course's Assignment 5
/// (CSinParallel's drug design exemplar, paper reference [7]): score a
/// set of candidate ligands against a protein by longest common
/// subsequence and find the best binder. Ligand lengths vary, so the work
/// is irregular — exactly what distinguishes the OpenMP (dynamic
/// schedule) solution from a naive fixed-partition threads solution.
struct Config {
  int num_ligands = 120;
  int max_ligand_len = 5;  // the paper's experiment raises this to 7
  int protein_len = 750;
  std::uint64_t seed = 2018;
  int threads = 4;

  /// Schedule used by the TeachMP solver. dynamic(1) is the exemplar's
  /// answer to the irregular ligand costs; rt::Schedule::steal() trades
  /// its per-chunk shared-counter contention for mostly-local deque pops.
  rt::Schedule schedule = rt::Schedule::dynamic(1);

  /// Machine the simulated solvers run on.
  sim::MachineSpec machine = sim::MachineSpec::raspberry_pi_3bplus();
};

/// Generate `count` random ligands with lengths uniform in
/// [1, max_len], over the lowercase alphabet (as in the exemplar).
std::vector<std::string> generate_ligands(int count, int max_len,
                                          util::Rng& rng);

/// Generate a random protein string of the given length.
std::string generate_protein(int length, util::Rng& rng);

/// Longest-common-subsequence score of a ligand against the protein
/// (iterative O(|ligand| * |protein|) dynamic program).
int match_score(const std::string& ligand, const std::string& protein);

/// Modelled cost of one match_score call on the simulated machine, in
/// abstract ops: ~ protein_len * 2^ligand_len, matching the exemplar's
/// unmemoized recursive scorer (see the .cpp for why).
double match_cost_ops(std::size_t ligand_len, std::size_t protein_len);

/// Outcome of one solver run.
struct Result {
  int best_score = 0;
  std::vector<std::string> best_ligands;  // all ligands achieving it
  double elapsed_seconds = 0.0;           // virtual time for sim solvers
  rt::RunResult run;
};

/// Sequential baseline (single simulated thread).
Result solve_sequential(const Config& config);

/// The "OpenMP" solution: TeachMP parallel-for with the configured
/// (dynamic by default) schedule.
Result solve_teachmp(const Config& config);

/// The "C++11 threads" solution students write: spawn N threads, give
/// each a fixed contiguous block of ligands, merge at join. No load
/// balancing — the classroom contrast with OpenMP's dynamic schedule.
Result solve_cxx11_threads(const Config& config);

/// MapReduce formulation (host execution via pblpar::mapreduce): map each
/// ligand to (score, ligand), reduce by max. Demonstrates the Assignment
/// 5 reading; timing is host time, not simulated.
Result solve_mapreduce(const Config& config);

/// The ligand sweep on the fault-tolerant cluster engine: a simulated
/// Pi cluster of `nodes` ranks (rank 0 masters, the rest score ligands,
/// one task per ligand), with optional deterministic fault injection.
/// The Result is byte-identical to solve_sequential's even when workers
/// crash or straggle; elapsed_seconds is the virtual cluster makespan.
Result solve_cluster(const Config& config, int nodes,
                     const cluster::FaultPlan* faults = nullptr,
                     cluster::ClusterProfile* profile = nullptr);

/// Representative source-line counts of the three student solutions (the
/// paper asks "What are the number of lines in each file?"); taken from
/// the CSinParallel exemplar's sequential/OpenMP/C++11 sources.
struct SourceLines {
  int sequential = 0;
  int openmp = 0;
  int cxx11_threads = 0;
};
SourceLines exemplar_source_lines();

/// One row of the Assignment 5 experiment.
struct ExperimentRow {
  std::string approach;
  int threads = 0;
  int max_ligand_len = 0;
  double time_seconds = 0.0;
  int best_score = 0;
};

/// The full in-text experiment: sequential vs TeachMP vs C++11 threads;
/// 4 then 5 threads; max ligand length 5 then 7.
std::vector<ExperimentRow> run_assignment5_experiment(Config base);

}  // namespace pblpar::drugdesign
