#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "rt/parallel.hpp"
#include "rt/reduce.hpp"

namespace pblpar::patternlets {

/// Library form of the CSinParallel "Shared Memory Parallel Patternlets"
/// the course's Assignments 2-4 build (paper reference [8]). Each
/// function runs the patternlet on a TeachMP team and returns what the
/// classroom version prints, so examples, tests, and benches can inspect
/// the behaviour.

// --- Assignment 2 -----------------------------------------------------------

/// Fork-join: the master forks a team, every member "greets", the team
/// joins back. `greeting_order` records thread ids in greeting order
/// (deterministic on the Sim backend).
struct ForkJoinResult {
  std::vector<int> greeting_order;
  rt::RunResult run;
};
ForkJoinResult fork_join(const rt::ParallelConfig& config);

/// SPMD: every member reports (thread_num, num_threads) — the "single
/// program multiple data" observation.
struct SpmdResult {
  std::vector<std::pair<int, int>> reports;  // in thread id order
  rt::RunResult run;
};
SpmdResult spmd(const rt::ParallelConfig& config);

/// The shared-memory concern: an unsynchronized shared counter update is
/// a data race ("scope matters"). Runs the racy version and the fixed
/// (private accumulation + critical publish) version on a simulated Pi
/// with the race detector attached.
struct DataRaceDemoResult {
  long racy_final = 0;
  std::size_t races_in_racy_version = 0;
  long fixed_final = 0;
  std::size_t races_in_fixed_version = 0;
};
DataRaceDemoResult shared_memory_race_demo(int threads,
                                           int increments_per_thread);

// --- Assignment 3 -----------------------------------------------------------

/// Which thread executed which iteration (the classroom print-out of the
/// loop patternlets).
struct LoopAssignment {
  std::vector<std::pair<int, std::int64_t>> executed;  // (thread, iteration)
  rt::RunResult run;

  /// Iterations run by one thread, in execution order.
  std::vector<std::int64_t> iterations_of(int thread) const;
};

/// "Running Loops in Parallel": OpenMP's default parallel-for, equal
/// contiguous chunks per thread.
LoopAssignment parallel_loop_equal_chunks(const rt::ParallelConfig& config,
                                          std::int64_t iterations,
                                          const rt::CostModel& cost = {});

/// "Scheduling of Parallel Loops": chunks of 1, 2, 3... static or
/// dynamic, per the given schedule.
LoopAssignment parallel_loop_chunks(const rt::ParallelConfig& config,
                                    std::int64_t iterations,
                                    rt::Schedule schedule,
                                    const rt::CostModel& cost = {});

/// "When Loops Have Dependencies": the reduction clause.
struct ReductionResult {
  long sum = 0;
  rt::RunResult run;
};
ReductionResult reduction_sum(
    const rt::ParallelConfig& config, std::int64_t n,
    rt::ReduceStrategy strategy = rt::ReduceStrategy::PerThreadPartials,
    const rt::CostModel& cost = {});

// --- Assignment 4 -----------------------------------------------------------

/// "Integration Using the Trapezoidal Rule": parallel for + private,
/// shared, and reduction clauses. Integrates f over [a, b] with n
/// trapezoids.
struct TrapezoidResult {
  double integral = 0.0;
  rt::RunResult run;
};
TrapezoidResult trapezoid_integration(
    const rt::ParallelConfig& config, double (*f)(double), double a,
    double b, std::int64_t n,
    rt::Schedule schedule = rt::Schedule::static_block(),
    rt::ReduceStrategy strategy = rt::ReduceStrategy::PerThreadPartials);

/// "Coordination: Synchronization with a Barrier": every member runs
/// phase 1, hits the barrier, runs phase 2. Returns whether every phase-1
/// mark was visible to every member in phase 2 (always true when the
/// barrier works).
struct BarrierDemoResult {
  bool phases_separated = false;
  rt::RunResult run;
};
BarrierDemoResult barrier_coordination(const rt::ParallelConfig& config);

/// "The Master-Worker Implementation Strategy": thread 0 coordinates
/// while the workers drain a shared task queue.
struct MasterWorkerResult {
  std::vector<std::int64_t> tasks_per_thread;  // index = thread id
  std::int64_t tasks_processed = 0;
  rt::RunResult run;
};
MasterWorkerResult master_worker(const rt::ParallelConfig& config,
                                 std::int64_t num_tasks,
                                 const rt::CostModel& cost = {});

}  // namespace pblpar::patternlets
