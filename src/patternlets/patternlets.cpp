#include "patternlets/patternlets.hpp"

#include <algorithm>

#include "race/detector.hpp"
#include "race/shared.hpp"
#include "sim/machine.hpp"
#include "util/error.hpp"

namespace pblpar::patternlets {

ForkJoinResult fork_join(const rt::ParallelConfig& config) {
  ForkJoinResult result;
  result.run = rt::parallel(config, [&](rt::TeamContext& tc) {
    tc.critical([&] { result.greeting_order.push_back(tc.thread_num()); });
  });
  return result;
}

SpmdResult spmd(const rt::ParallelConfig& config) {
  SpmdResult result;
  result.reports.resize(static_cast<std::size_t>(config.num_threads));
  result.run = rt::parallel(config, [&](rt::TeamContext& tc) {
    // Each member writes its own slot: no sharing, no race.
    result.reports[static_cast<std::size_t>(tc.thread_num())] = {
        tc.thread_num(), tc.num_threads()};
  });
  return result;
}

DataRaceDemoResult shared_memory_race_demo(int threads,
                                           int increments_per_thread) {
  util::require(threads >= 2,
                "shared_memory_race_demo: races need at least two threads");
  util::require(increments_per_thread >= 1,
                "shared_memory_race_demo: need at least one increment");
  DataRaceDemoResult demo;

  // --- Racy version: every thread hammers one shared counter.
  {
    sim::Machine machine(sim::MachineSpec::raspberry_pi_3bplus());
    race::Detector detector;
    machine.set_observer(&detector);
    race::Shared<long> counter(0);
    detector.label_address(counter.address(), "shared counter");

    machine.run([&](sim::Context& root) {
      std::vector<sim::ThreadHandle> workers;
      for (int t = 0; t < threads; ++t) {
        workers.push_back(root.spawn([&](sim::Context& ctx) {
          for (int i = 0; i < increments_per_thread; ++i) {
            counter.add(ctx, 1);
            ctx.yield();  // interleave with the other workers
          }
        }));
      }
      for (const sim::ThreadHandle worker : workers) {
        root.join(worker);
      }
    });
    demo.racy_final = counter.unsafe_value();
    demo.races_in_racy_version = detector.races().size();
  }

  // --- Fixed version: private accumulation, one locked publish.
  {
    sim::Machine machine(sim::MachineSpec::raspberry_pi_3bplus());
    race::Detector detector;
    machine.set_observer(&detector);
    const sim::MutexHandle mutex = machine.make_mutex();
    race::Shared<long> counter(0);
    detector.label_address(counter.address(), "shared counter");

    machine.run([&](sim::Context& root) {
      std::vector<sim::ThreadHandle> workers;
      for (int t = 0; t < threads; ++t) {
        workers.push_back(root.spawn([&](sim::Context& ctx) {
          long private_sum = 0;  // scope matters: thread-private
          for (int i = 0; i < increments_per_thread; ++i) {
            private_sum += 1;
          }
          sim::ScopedLock lock(ctx, mutex);
          counter.add(ctx, private_sum);
        }));
      }
      for (const sim::ThreadHandle worker : workers) {
        root.join(worker);
      }
    });
    demo.fixed_final = counter.unsafe_value();
    demo.races_in_fixed_version = detector.races().size();
  }
  return demo;
}

std::vector<std::int64_t> LoopAssignment::iterations_of(int thread) const {
  std::vector<std::int64_t> mine;
  for (const auto& [tid, iteration] : executed) {
    if (tid == thread) {
      mine.push_back(iteration);
    }
  }
  return mine;
}

namespace {

LoopAssignment run_loop(const rt::ParallelConfig& config,
                        std::int64_t iterations, rt::Schedule schedule,
                        const rt::CostModel& cost) {
  LoopAssignment assignment;
  assignment.run = rt::parallel(config, [&](rt::TeamContext& tc) {
    rt::for_loop(
        tc, rt::Range::upto(iterations), schedule,
        [&](std::int64_t i) {
          tc.critical(
              [&] { assignment.executed.emplace_back(tc.thread_num(), i); });
        },
        cost);
  });
  return assignment;
}

}  // namespace

LoopAssignment parallel_loop_equal_chunks(const rt::ParallelConfig& config,
                                          std::int64_t iterations,
                                          const rt::CostModel& cost) {
  return run_loop(config, iterations, rt::Schedule::static_block(), cost);
}

LoopAssignment parallel_loop_chunks(const rt::ParallelConfig& config,
                                    std::int64_t iterations,
                                    rt::Schedule schedule,
                                    const rt::CostModel& cost) {
  return run_loop(config, iterations, schedule, cost);
}

ReductionResult reduction_sum(const rt::ParallelConfig& config,
                              std::int64_t n, rt::ReduceStrategy strategy,
                              const rt::CostModel& cost) {
  ReductionResult result;
  const auto reduced = rt::parallel_reduce<long>(
      config, rt::Range::upto(n), rt::Schedule::static_block(), 0L,
      [](std::int64_t i) { return static_cast<long>(i); },
      [](long a, long b) { return a + b; }, cost, strategy);
  result.sum = reduced.value;
  result.run = reduced.run;
  return result;
}

TrapezoidResult trapezoid_integration(const rt::ParallelConfig& config,
                                      double (*f)(double), double a,
                                      double b, std::int64_t n,
                                      rt::Schedule schedule,
                                      rt::ReduceStrategy strategy) {
  util::require(f != nullptr, "trapezoid_integration: f must be callable");
  util::require(n >= 1, "trapezoid_integration: need at least one trapezoid");
  util::require(b > a, "trapezoid_integration: b must exceed a");

  const double h = (b - a) / static_cast<double>(n);
  // ~10 abstract flops per trapezoid on the simulated Pi.
  const rt::CostModel cost = rt::CostModel::uniform(10.0);

  TrapezoidResult result;
  const auto reduced = rt::parallel_reduce<double>(
      config, rt::Range::upto(n), schedule, 0.0,
      [&](std::int64_t i) {
        const double x0 = a + h * static_cast<double>(i);
        return 0.5 * h * (f(x0) + f(x0 + h));
      },
      [](double lhs, double rhs) { return lhs + rhs; }, cost, strategy);
  result.integral = reduced.value;
  result.run = reduced.run;
  return result;
}

BarrierDemoResult barrier_coordination(const rt::ParallelConfig& config) {
  BarrierDemoResult result;
  std::vector<int> phase_one_marks(
      static_cast<std::size_t>(config.num_threads), 0);
  bool all_saw_everything = true;

  result.run = rt::parallel(config, [&](rt::TeamContext& tc) {
    // Phase 1: leave a mark.
    phase_one_marks[static_cast<std::size_t>(tc.thread_num())] = 1;
    tc.barrier();
    // Phase 2: every member must see every mark.
    bool saw_all = true;
    for (const int mark : phase_one_marks) {
      saw_all = saw_all && mark == 1;
    }
    tc.critical([&] { all_saw_everything = all_saw_everything && saw_all; });
  });
  result.phases_separated = all_saw_everything;
  return result;
}

MasterWorkerResult master_worker(const rt::ParallelConfig& config,
                                 std::int64_t num_tasks,
                                 const rt::CostModel& cost) {
  util::require(config.num_threads >= 2,
                "master_worker: need a master and at least one worker");
  MasterWorkerResult result;
  result.tasks_per_thread.assign(
      static_cast<std::size_t>(config.num_threads), 0);

  result.run = rt::parallel(config, [&](rt::TeamContext& tc) {
    const int loop_id = tc.next_loop_id();  // consistent across members
    if (tc.thread_num() == 0) {
      // The master hands out work by owning the queue; in this shared
      // memory formulation the queue is self-service, so the master only
      // coordinates (and could monitor progress).
      tc.barrier();
      return;
    }
    for (;;) {
      const auto [start, count] =
          tc.claim(loop_id, num_tasks, rt::Schedule::dynamic(1));
      if (count == 0) {
        break;
      }
      tc.critical([&] {
        result.tasks_per_thread[static_cast<std::size_t>(tc.thread_num())] +=
            count;
        result.tasks_processed += count;
      });
      if (!cost.empty()) {
        tc.compute(cost.total_ops(start, start + count),
                   cost.mem_intensity);
      }
    }
    tc.barrier();
  });
  return result;
}

}  // namespace pblpar::patternlets
