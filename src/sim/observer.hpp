#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pblpar::sim {

/// Receives the happens-before events of a simulation run.
///
/// The race detector (pblpar::race) implements this interface; the machine
/// invokes the callbacks under its internal lock, in deterministic virtual
/// time order, so implementations need no synchronization of their own but
/// must not call back into the machine.
class HbObserver {
 public:
  virtual ~HbObserver() = default;

  /// `parent` spawned `child` (child's first action happens-after).
  virtual void on_spawn(int parent, int child) = 0;

  /// `parent` joined `child` (child's last action happens-before).
  virtual void on_join(int parent, int child) = 0;

  /// All `participants` synchronized at a barrier.
  virtual void on_barrier(std::span<const int> participants) = 0;

  /// `tid` acquired mutex `mutex_id` (happens-after the previous release).
  virtual void on_mutex_acquire(int tid, std::uint64_t mutex_id) = 0;

  /// `tid` released mutex `mutex_id`.
  virtual void on_mutex_release(int tid, std::uint64_t mutex_id) = 0;

  /// Annotated memory accesses (issued by race::Shared instrumentation).
  virtual void on_read(int tid, const void* addr, std::size_t size) = 0;
  virtual void on_write(int tid, const void* addr, std::size_t size) = 0;
};

}  // namespace pblpar::sim
