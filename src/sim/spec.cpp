#include "sim/spec.hpp"

#include "util/error.hpp"

namespace pblpar::sim {

MachineSpec MachineSpec::raspberry_pi_3bplus() {
  MachineSpec spec;
  spec.name = "raspberry-pi-3b+";
  spec.cores = 4;
  spec.clock_ghz = 1.4;
  spec.ops_per_cycle = 1.0;
  return spec;
}

MachineSpec MachineSpec::raspberry_pi_zero() {
  MachineSpec spec;
  spec.name = "raspberry-pi-zero";
  spec.cores = 1;
  spec.clock_ghz = 1.0;
  spec.ops_per_cycle = 1.0;
  return spec;
}

MachineSpec MachineSpec::with_cores(int cores) {
  util::require(cores >= 1, "MachineSpec::with_cores: need at least 1 core");
  MachineSpec spec = raspberry_pi_3bplus();
  spec.name = "generic-" + std::to_string(cores) + "core";
  spec.cores = cores;
  return spec;
}

}  // namespace pblpar::sim
