#include "sim/report.hpp"

#include <numeric>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace pblpar::sim {

double ExecutionReport::total_busy_s() const {
  return std::accumulate(busy_s.begin(), busy_s.end(), 0.0);
}

double ExecutionReport::effective_parallelism() const {
  return makespan_s > 0.0 ? total_busy_s() / makespan_s : 0.0;
}

double ExecutionReport::utilization() const {
  return spec.cores > 0 ? effective_parallelism() / spec.cores : 0.0;
}

double ExecutionReport::speedup_vs(const ExecutionReport& baseline) const {
  util::require(makespan_s > 0.0,
                "ExecutionReport::speedup_vs: this run has zero makespan");
  return baseline.makespan_s / makespan_s;
}

std::string ExecutionReport::summary() const {
  std::ostringstream out;
  out << spec.name << ": makespan "
      << util::Table::num(makespan_s * 1e3, 3) << " ms, "
      << busy_s.size() << " threads, effective parallelism "
      << util::Table::num(effective_parallelism(), 2) << "/" << spec.cores
      << " (" << util::Table::num(utilization() * 100.0, 1)
      << "% utilization), " << spawns << " spawns, " << barrier_episodes
      << " barriers, " << mutex_acquires << " lock acquires";
  return out.str();
}

}  // namespace pblpar::sim
