#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/spec.hpp"

namespace pblpar::sim {

/// One contiguous span of modelled execution by a virtual thread.
struct TraceSegment {
  int tid = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double ops = 0.0;
};

/// Summary of one Machine::run.
struct ExecutionReport {
  MachineSpec spec;

  /// Virtual wall-clock of the whole run, in seconds.
  double makespan_s = 0.0;

  /// Total modelled operations executed across all threads.
  double total_ops = 0.0;

  /// Per-thread virtual busy time (seconds spent draining modelled work,
  /// including charged synchronization overheads), indexed by tid.
  std::vector<double> busy_s;

  std::uint64_t spawns = 0;
  std::uint64_t joins = 0;
  std::uint64_t barrier_episodes = 0;
  std::uint64_t mutex_acquires = 0;
  std::uint64_t compute_calls = 0;

  /// Only populated when MachineSpec::record_trace is set.
  std::vector<TraceSegment> trace;

  /// Sum of busy time over all threads.
  double total_busy_s() const;

  /// total_busy / makespan: how many cores were kept busy on average.
  double effective_parallelism() const;

  /// total_busy / (cores * makespan), in [0, 1].
  double utilization() const;

  /// Speedup of this run relative to a baseline run (baseline / this).
  double speedup_vs(const ExecutionReport& baseline) const;

  /// Human-readable one-paragraph summary.
  std::string summary() const;
};

}  // namespace pblpar::sim
