#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/observer.hpp"
#include "sim/report.hpp"
#include "sim/spec.hpp"

namespace pblpar::sim {

class Machine;

/// Thrown out of Machine::run when every virtual thread is blocked and no
/// modelled work remains — i.e., the simulated program deadlocked.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Internal unwinding signal used to tear down virtual threads when a run
/// aborts (deadlock, or an exception escaped another thread's body). User
/// code should not catch this; catch-all handlers in thread bodies must
/// rethrow it.
class Aborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "pblpar::sim::Aborted: simulation run is shutting down";
  }
};

/// Opaque handle to a simulated mutex. Create via Machine::make_mutex.
struct MutexHandle {
  int id = -1;
};

/// Opaque handle to a simulated cyclic barrier. Create via
/// Machine::make_barrier.
struct BarrierHandle {
  int id = -1;
};

/// Opaque handle to a simulated condition variable. Create via
/// Machine::make_condition.
struct ConditionHandle {
  int id = -1;
};

/// Opaque handle to a virtual thread, returned by Context::spawn.
struct ThreadHandle {
  int tid = -1;
};

/// Per-virtual-thread facade through which simulated code interacts with
/// the machine. A Context is only valid inside the body it was passed to.
class Context {
 public:
  /// Identifier of this virtual thread (0 is the root).
  int tid() const { return tid_; }

  /// Current virtual time in seconds.
  double now() const;

  Machine& machine() { return *machine_; }
  const MachineSpec& spec() const;

  /// Charge `ops` abstract operations of modelled work to this thread.
  /// `mem_intensity` in [0,1] scales the shared-memory contention penalty
  /// (0 = pure compute, 1 = fully memory-bound).
  void compute(double ops, double mem_intensity = 0.0);

  /// Convenience: charge a fixed latency expressed in microseconds.
  void compute_us(double us, double mem_intensity = 0.0);

  /// Start a new virtual thread running `body`. Charges the parent the
  /// machine's fork cost.
  ThreadHandle spawn(std::function<void(Context&)> body);

  /// Block until `child` finishes; charges the machine's join cost.
  void join(ThreadHandle child);

  /// Block until all participants of the barrier arrive.
  void barrier(BarrierHandle handle);

  /// Acquire / release a simulated mutex (FIFO fairness).
  void lock(MutexHandle handle);
  void unlock(MutexHandle handle);

  /// Atomically release `mutex` and block on `condition`; on wake the
  /// mutex is re-acquired before returning (like std::condition_variable,
  /// so spurious-wakeup-safe callers should re-check their predicate).
  void wait(ConditionHandle condition, MutexHandle mutex);

  /// Like wait(), but gives up once virtual time reaches `deadline_s`
  /// (absolute, seconds). Returns true if notified, false on timeout; the
  /// mutex is re-acquired before returning either way. A deadline at or
  /// before now() still releases the mutex and yields once, so peers can
  /// run, then times out immediately.
  bool wait_until(ConditionHandle condition, MutexHandle mutex,
                  double deadline_s);

  /// Wake one / all waiters of the condition. The caller need not hold
  /// the associated mutex (as with std::condition_variable).
  void notify_one(ConditionHandle condition);
  void notify_all(ConditionHandle condition);

  /// Yield real-code execution to another runnable virtual thread without
  /// consuming virtual time (useful to interleave annotated accesses).
  void yield();

  /// Forward annotated memory accesses to the attached HbObserver
  /// (no-ops when no observer is attached).
  void annotate_read(const void* addr, std::size_t size);
  void annotate_write(const void* addr, std::size_t size);

 private:
  friend class Machine;
  Context(Machine& machine, int tid) : machine_(&machine), tid_(tid) {}

  Machine* machine_;
  int tid_;
};

/// RAII lock for a simulated mutex (CP.20: never plain lock/unlock).
class ScopedLock {
 public:
  ScopedLock(Context& ctx, MutexHandle handle) : ctx_(&ctx), handle_(handle) {
    ctx_->lock(handle_);
  }
  /// Unlock must never throw out of a destructor: when the machine is
  /// aborting, Context::unlock itself raises Aborted, and this destructor
  /// often runs while another Aborted (thrown from a blocking call made
  /// under the lock) is already unwinding — a second throw would be
  /// std::terminate. The machine resets all mutex state between runs, so
  /// swallowing the teardown signal here loses nothing.
  ~ScopedLock() {
    try {
      ctx_->unlock(handle_);
    } catch (const Aborted&) {
    }
  }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Context* ctx_;
  MutexHandle handle_;
};

/// Deterministic discrete-event simulator of a small shared-memory
/// multicore machine.
///
/// Execution model: virtual threads run their real C++ bodies serialized
/// (one at a time, FIFO), so results are deterministic even for
/// "dynamic" scheduling; virtual *time* advances only when every live
/// thread is blocked on modelled work or synchronization. Modelled work
/// drains under generalized processor sharing across `spec.cores` cores,
/// with oversubscription and memory-contention penalties (see MachineSpec).
///
/// A Machine is reusable: each call to run() starts a fresh virtual clock.
/// Machines are not themselves thread-safe; drive a given instance from
/// one host thread.
class Machine {
 public:
  explicit Machine(MachineSpec spec = MachineSpec::raspberry_pi_3bplus());
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineSpec& spec() const { return spec_; }

  /// Attach a happens-before observer (e.g., the race detector). Must be
  /// called outside run(). Pass nullptr to detach. Not owned.
  void set_observer(HbObserver* observer);

  /// Create synchronization objects (usable across runs).
  MutexHandle make_mutex();
  BarrierHandle make_barrier(int participants);
  ConditionHandle make_condition();

  /// Execute `root` as virtual thread 0 and simulate until every spawned
  /// thread finishes. Throws DeadlockError on deadlock and rethrows the
  /// first exception that escapes any thread body.
  ExecutionReport run(std::function<void(Context&)> root);

 private:
  friend class Context;

  enum class Phase {
    ReadyReal,    // waiting to execute real code
    RealRunning,  // executing real code right now (at most one thread)
    WaitCompute,  // draining modelled work in virtual time
    WaitBarrier,
    WaitMutex,
    WaitJoin,
    WaitCondition,
    Done,
  };

  struct ThreadState {
    int tid = -1;
    Phase phase = Phase::ReadyReal;
    double demand_ops = 0.0;
    double mem_intensity = 0.0;
    std::condition_variable cv;
    std::function<void(Context&)> body;
    std::vector<int> joiners;
    bool timed_out = false;  // set when a wait_until expired, not notified
    std::thread os_thread;
  };

  struct MutexState {
    int owner = -1;  // -1 = free
    std::deque<int> waiters;
  };

  struct BarrierState {
    int participants = 0;
    std::vector<int> arrived;
  };

  struct ConditionWaiter {
    int tid = -1;
    int mutex_id = -1;  // re-acquired on wake
    double deadline_s = 0.0;  // +inf for untimed waits
  };

  struct ConditionState {
    std::deque<ConditionWaiter> waiters;
  };

  // All private methods below require mu_ to be held by the caller.
  ThreadState& state_of(int tid);
  bool all_done() const;
  int live_thread_count() const;
  void enqueue_ready(int tid);
  void schedule_next_locked();
  void advance_virtual_time_locked();
  double next_wait_deadline_locked() const;
  void expire_timed_waits_locked();
  void begin_wait_and_reschedule(std::unique_lock<std::mutex>& lk, int tid);
  void charge_locked(int tid, double ops, double mem_intensity);
  void finish_thread_locked(int tid);
  void abort_all_locked();
  void check_abort_locked(int tid) const;

  // Blocking entry points used by Context (acquire mu_ themselves).
  void api_compute(int tid, double ops, double mem_intensity);
  ThreadHandle api_spawn(int parent, std::function<void(Context&)> body);
  void api_join(int tid, ThreadHandle child);
  void api_barrier(int tid, BarrierHandle handle);
  void api_lock(int tid, MutexHandle handle);
  void api_unlock(int tid, MutexHandle handle);
  void api_wait(int tid, ConditionHandle condition, MutexHandle mutex);
  bool api_wait_until(int tid, ConditionHandle condition, MutexHandle mutex,
                      double deadline_s);
  void api_notify(int tid, ConditionHandle condition, bool all);
  void api_yield(int tid);
  void unlock_locked(int tid, int mutex_id);
  void enqueue_for_mutex_locked(int tid, int mutex_id);
  double api_now() const;

  void thread_main(int tid);

  MachineSpec spec_;
  HbObserver* observer_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable driver_cv_;

  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::deque<int> ready_real_;
  int running_real_ = -1;
  double now_s_ = 0.0;
  bool running_run_ = false;
  bool aborted_ = false;
  bool deadlocked_ = false;
  std::string deadlock_detail_;
  std::exception_ptr first_exception_;

  std::vector<MutexState> mutexes_;
  std::vector<BarrierState> barriers_;
  std::vector<ConditionState> conditions_;

  // Report accumulation for the current run.
  std::vector<double> busy_s_;
  double total_ops_ = 0.0;
  std::uint64_t spawns_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t barrier_episodes_ = 0;
  std::uint64_t mutex_acquires_ = 0;
  std::uint64_t compute_calls_ = 0;
  std::vector<TraceSegment> trace_;
};

}  // namespace pblpar::sim
