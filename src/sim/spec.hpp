#pragma once

#include <string>

namespace pblpar::sim {

/// Parameters of a simulated shared-memory multicore machine.
///
/// The simulator charges virtual time for *modelled work* (`compute` calls)
/// and for synchronization primitives; real C++ code executed by virtual
/// threads is free in virtual time, so all timing flows through this spec.
/// Overhead magnitudes are loosely calibrated to a Raspberry Pi 3 B+
/// (the paper's classroom hardware): pthread creation in the tens of
/// microseconds, barriers in the low microseconds, cache-line transfer for
/// a contended lock around a microsecond.
struct MachineSpec {
  std::string name = "generic-smp";

  /// Number of physical cores.
  int cores = 4;

  /// Core clock in GHz.
  double clock_ghz = 1.4;

  /// Abstract operations retired per cycle (1.0 = scalar in-order, like
  /// the Cortex-A53 on most integer code).
  double ops_per_cycle = 1.0;

  /// Cost charged to the parent when spawning a virtual thread.
  double fork_cost_us = 25.0;

  /// Cost charged to a joiner when its target thread finishes.
  double join_cost_us = 5.0;

  /// Barrier release cost charged to each participant, multiplied by the
  /// number of participants (linear barrier, as in small OpenMP runtimes).
  double barrier_cost_us_per_thread = 1.5;

  /// Cost of acquiring a mutex (cache-line transfer + atomic RMW).
  double mutex_acquire_cost_us = 0.8;

  /// Cost the runtime charges for claiming one chunk from a shared work
  /// queue (dynamic/guided loop schedules).
  double sched_chunk_cost_us = 0.8;

  /// Relative throughput penalty per oversubscribed thread:
  /// rate *= 1 / (1 + oversub_penalty * max(0, runnable - cores) / cores).
  /// Models context-switch and cache-pollution cost of time slicing.
  double oversub_penalty = 0.06;

  /// Memory-contention coefficient: a segment with memory intensity m
  /// (in [0,1]) is slowed by 1 + beta * m * (active_cores - 1), modelling
  /// the Pi's single shared memory bank.
  double mem_contention_beta = 0.20;

  /// Record a per-segment execution trace (costs memory; off by default).
  bool record_trace = false;

  /// Abstract operations per second of one core.
  double ops_per_second() const { return clock_ghz * 1e9 * ops_per_cycle; }

  /// Convert microseconds of overhead into abstract operations.
  double us_to_ops(double us) const { return us * 1e-6 * ops_per_second(); }

  // --- Presets -----------------------------------------------------------

  /// The paper's classroom machine: 4x ARM Cortex-A53 @ 1.4 GHz, one
  /// shared memory bank (Raspberry Pi 3 Model B+).
  static MachineSpec raspberry_pi_3bplus();

  /// A single-core SBC (Raspberry Pi Zero class) — useful as the "no
  /// parallel hardware" baseline.
  static MachineSpec raspberry_pi_zero();

  /// Generic machine with the given core count (Pi-like clocks).
  static MachineSpec with_cores(int cores);
};

}  // namespace pblpar::sim
