#include "sim/machine.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace pblpar::sim {

namespace {

/// Demands at or below this many abstract ops count as drained
/// (well below one core cycle).
constexpr double kEpsilonOps = 1e-6;

const char* phase_name(int phase_index) {
  static const char* names[] = {"ready",      "running",        "compute",
                                "wait-barrier", "wait-mutex",   "wait-join",
                                "wait-condition", "done"};
  return names[phase_index];
}

}  // namespace

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

double Context::now() const { return machine_->api_now(); }

const MachineSpec& Context::spec() const { return machine_->spec(); }

void Context::compute(double ops, double mem_intensity) {
  machine_->api_compute(tid_, ops, mem_intensity);
}

void Context::compute_us(double us, double mem_intensity) {
  machine_->api_compute(tid_, machine_->spec().us_to_ops(us), mem_intensity);
}

ThreadHandle Context::spawn(std::function<void(Context&)> body) {
  return machine_->api_spawn(tid_, std::move(body));
}

void Context::join(ThreadHandle child) { machine_->api_join(tid_, child); }

void Context::barrier(BarrierHandle handle) {
  machine_->api_barrier(tid_, handle);
}

void Context::lock(MutexHandle handle) { machine_->api_lock(tid_, handle); }

void Context::unlock(MutexHandle handle) {
  machine_->api_unlock(tid_, handle);
}

void Context::wait(ConditionHandle condition, MutexHandle mutex) {
  machine_->api_wait(tid_, condition, mutex);
}

bool Context::wait_until(ConditionHandle condition, MutexHandle mutex,
                         double deadline_s) {
  return machine_->api_wait_until(tid_, condition, mutex, deadline_s);
}

void Context::notify_one(ConditionHandle condition) {
  machine_->api_notify(tid_, condition, /*all=*/false);
}

void Context::notify_all(ConditionHandle condition) {
  machine_->api_notify(tid_, condition, /*all=*/true);
}

void Context::yield() { machine_->api_yield(tid_); }

void Context::annotate_read(const void* addr, std::size_t size) {
  std::lock_guard guard(machine_->mu_);
  if (machine_->observer_ != nullptr) {
    machine_->observer_->on_read(tid_, addr, size);
  }
}

void Context::annotate_write(const void* addr, std::size_t size) {
  std::lock_guard guard(machine_->mu_);
  if (machine_->observer_ != nullptr) {
    machine_->observer_->on_write(tid_, addr, size);
  }
}

// ---------------------------------------------------------------------------
// Machine: construction & configuration
// ---------------------------------------------------------------------------

Machine::Machine(MachineSpec spec) : spec_(std::move(spec)) {
  util::require(spec_.cores >= 1, "Machine: spec.cores must be >= 1");
  util::require(spec_.clock_ghz > 0.0, "Machine: spec.clock_ghz must be > 0");
}

Machine::~Machine() {
  for (auto& thread : threads_) {
    if (thread->os_thread.joinable()) {
      thread->os_thread.join();
    }
  }
}

void Machine::set_observer(HbObserver* observer) {
  std::lock_guard guard(mu_);
  util::require(!running_run_,
                "Machine::set_observer: cannot change observer mid-run");
  observer_ = observer;
}

MutexHandle Machine::make_mutex() {
  std::lock_guard guard(mu_);
  mutexes_.push_back(MutexState{});
  return MutexHandle{static_cast<int>(mutexes_.size()) - 1};
}

BarrierHandle Machine::make_barrier(int participants) {
  util::require(participants >= 1,
                "Machine::make_barrier: need at least one participant");
  std::lock_guard guard(mu_);
  barriers_.push_back(BarrierState{participants, {}});
  return BarrierHandle{static_cast<int>(barriers_.size()) - 1};
}

ConditionHandle Machine::make_condition() {
  std::lock_guard guard(mu_);
  conditions_.push_back(ConditionState{});
  return ConditionHandle{static_cast<int>(conditions_.size()) - 1};
}

// ---------------------------------------------------------------------------
// Machine: run loop
// ---------------------------------------------------------------------------

ExecutionReport Machine::run(std::function<void(Context&)> root) {
  util::require(root != nullptr, "Machine::run: root body must be callable");
  {
    std::unique_lock lk(mu_);
    util::require(!running_run_, "Machine::run: already running");

    // Join stragglers from a previous (possibly aborted) run and reset.
    for (auto& thread : threads_) {
      util::ensure(thread->phase == Phase::Done,
                   "Machine::run: previous run left live threads");
    }
  }
  for (auto& thread : threads_) {
    if (thread->os_thread.joinable()) {
      thread->os_thread.join();
    }
  }

  std::unique_lock lk(mu_);
  threads_.clear();
  ready_real_.clear();
  running_real_ = -1;
  now_s_ = 0.0;
  aborted_ = false;
  deadlocked_ = false;
  deadlock_detail_.clear();
  first_exception_ = nullptr;
  busy_s_.clear();
  total_ops_ = 0.0;
  spawns_ = joins_ = barrier_episodes_ = mutex_acquires_ = compute_calls_ = 0;
  trace_.clear();
  for (auto& mutex : mutexes_) {
    mutex = MutexState{};
  }
  for (auto& barrier : barriers_) {
    barrier.arrived.clear();
  }
  for (auto& condition : conditions_) {
    condition.waiters.clear();
  }
  running_run_ = true;

  auto root_state = std::make_unique<ThreadState>();
  root_state->tid = 0;
  root_state->phase = Phase::ReadyReal;
  root_state->body = std::move(root);
  threads_.push_back(std::move(root_state));
  busy_s_.push_back(0.0);
  enqueue_ready(0);
  threads_[0]->os_thread = std::thread(&Machine::thread_main, this, 0);

  schedule_next_locked();
  driver_cv_.wait(lk, [&] { return all_done(); });
  running_run_ = false;
  lk.unlock();

  for (auto& thread : threads_) {
    if (thread->os_thread.joinable()) {
      thread->os_thread.join();
    }
  }

  ExecutionReport report;
  report.spec = spec_;
  report.makespan_s = now_s_;
  report.total_ops = total_ops_;
  report.busy_s = busy_s_;
  report.spawns = spawns_;
  report.joins = joins_;
  report.barrier_episodes = barrier_episodes_;
  report.mutex_acquires = mutex_acquires_;
  report.compute_calls = compute_calls_;
  report.trace = std::move(trace_);

  if (deadlocked_) {
    throw DeadlockError("simulated deadlock: " + deadlock_detail_);
  }
  if (first_exception_ != nullptr) {
    std::rethrow_exception(first_exception_);
  }
  return report;
}

void Machine::thread_main(int tid) {
  std::unique_lock lk(mu_);
  ThreadState& self = state_of(tid);
  self.cv.wait(lk, [&] { return self.phase == Phase::RealRunning || aborted_; });
  if (aborted_ && self.phase != Phase::RealRunning) {
    finish_thread_locked(tid);
    return;
  }
  lk.unlock();

  Context ctx(*this, tid);
  try {
    self.body(ctx);
  } catch (const Aborted&) {
    // Normal teardown of an aborted run.
  } catch (...) {
    std::lock_guard guard(mu_);
    if (first_exception_ == nullptr) {
      first_exception_ = std::current_exception();
    }
    abort_all_locked();
  }

  lk.lock();
  finish_thread_locked(tid);
}

// ---------------------------------------------------------------------------
// Machine: scheduling core (all methods require mu_ held)
// ---------------------------------------------------------------------------

Machine::ThreadState& Machine::state_of(int tid) {
  util::ensure(tid >= 0 && tid < static_cast<int>(threads_.size()),
               "Machine: invalid tid");
  return *threads_[static_cast<std::size_t>(tid)];
}

bool Machine::all_done() const {
  return std::all_of(threads_.begin(), threads_.end(), [](const auto& t) {
    return t->phase == Phase::Done;
  });
}

int Machine::live_thread_count() const {
  return static_cast<int>(
      std::count_if(threads_.begin(), threads_.end(), [](const auto& t) {
        return t->phase != Phase::Done;
      }));
}

void Machine::enqueue_ready(int tid) { ready_real_.push_back(tid); }

void Machine::schedule_next_locked() {
  if (aborted_) {
    abort_all_locked();
    return;
  }
  if (running_real_ != -1) {
    return;  // a thread is still executing real code
  }
  while (ready_real_.empty()) {
    if (all_done()) {
      driver_cv_.notify_all();
      return;
    }
    advance_virtual_time_locked();
    if (aborted_) {
      return;
    }
  }
  const int next = ready_real_.front();
  ready_real_.pop_front();
  ThreadState& state = state_of(next);
  util::ensure(state.phase == Phase::ReadyReal,
               "Machine: ready queue held a non-ready thread");
  state.phase = Phase::RealRunning;
  running_real_ = next;
  state.cv.notify_one();
}

void Machine::advance_virtual_time_locked() {
  std::vector<int> computing;
  for (const auto& thread : threads_) {
    if (thread->phase == Phase::WaitCompute) {
      computing.push_back(thread->tid);
    }
  }
  const double next_deadline = next_wait_deadline_locked();
  if (computing.empty()) {
    if (next_deadline < std::numeric_limits<double>::infinity()) {
      // No modelled work remains, but a timed wait can still fire: jump
      // the clock to the earliest deadline and expire it.
      now_s_ = std::max(now_s_, next_deadline);
      expire_timed_waits_locked();
      return;
    }
    // Live threads exist (caller checked all_done) but none can make
    // progress: every live thread waits on a barrier/mutex/join that will
    // never be signalled.
    std::ostringstream detail;
    detail << live_thread_count() << " live thread(s) blocked forever:";
    for (const auto& thread : threads_) {
      if (thread->phase != Phase::Done) {
        detail << " tid" << thread->tid << "="
               << phase_name(static_cast<int>(thread->phase));
      }
    }
    deadlocked_ = true;
    deadlock_detail_ = detail.str();
    abort_all_locked();
    return;
  }

  // Generalized processor sharing across spec_.cores cores.
  const double runnable = static_cast<double>(computing.size());
  const double cores = static_cast<double>(spec_.cores);
  const double share = std::min(1.0, cores / runnable);
  const double oversub =
      1.0 / (1.0 + spec_.oversub_penalty *
                       std::max(0.0, runnable - cores) / cores);
  const double active = std::min(runnable, cores);

  std::vector<double> rates(computing.size());
  double min_dt = -1.0;
  for (std::size_t i = 0; i < computing.size(); ++i) {
    const ThreadState& state = state_of(computing[i]);
    const double slowdown =
        1.0 + spec_.mem_contention_beta * state.mem_intensity * (active - 1.0);
    rates[i] = spec_.ops_per_second() * share * oversub / slowdown;
    const double dt = std::max(0.0, state.demand_ops) / rates[i];
    if (min_dt < 0.0 || dt < min_dt) {
      min_dt = dt;
    }
  }

  // A pending wait_until deadline caps the step so it fires on time.
  if (next_deadline < std::numeric_limits<double>::infinity()) {
    min_dt = std::min(min_dt, std::max(0.0, next_deadline - now_s_));
  }

  now_s_ += min_dt;
  for (std::size_t i = 0; i < computing.size(); ++i) {
    ThreadState& state = state_of(computing[i]);
    const double drained = rates[i] * min_dt;
    state.demand_ops -= drained;
    // Busy time is core occupancy: an oversubscribed thread only holds a
    // `share` fraction of a core while it drains.
    busy_s_[static_cast<std::size_t>(state.tid)] += min_dt * share;
    if (spec_.record_trace && min_dt > 0.0) {
      trace_.push_back(
          TraceSegment{state.tid, now_s_ - min_dt, now_s_, drained});
    }
    if (state.demand_ops <= kEpsilonOps) {
      state.demand_ops = 0.0;
      state.phase = Phase::ReadyReal;
      enqueue_ready(state.tid);
    }
  }
  expire_timed_waits_locked();
}

double Machine::next_wait_deadline_locked() const {
  double next = std::numeric_limits<double>::infinity();
  for (const auto& condition : conditions_) {
    for (const auto& waiter : condition.waiters) {
      next = std::min(next, waiter.deadline_s);
    }
  }
  return next;
}

void Machine::expire_timed_waits_locked() {
  constexpr double kSlack = 1e-12;
  for (auto& condition : conditions_) {
    for (auto it = condition.waiters.begin(); it != condition.waiters.end();) {
      if (it->deadline_s <= now_s_ + kSlack) {
        const ConditionWaiter expired = *it;
        it = condition.waiters.erase(it);
        state_of(expired.tid).timed_out = true;
        enqueue_for_mutex_locked(expired.tid, expired.mutex_id);
      } else {
        ++it;
      }
    }
  }
}

void Machine::begin_wait_and_reschedule(std::unique_lock<std::mutex>& lk,
                                        int tid) {
  ThreadState& self = state_of(tid);
  util::ensure(running_real_ == tid,
               "Machine: blocking call from a thread that is not running");
  running_real_ = -1;
  schedule_next_locked();
  self.cv.wait(lk, [&] { return self.phase == Phase::RealRunning || aborted_; });
  if (aborted_ && self.phase != Phase::RealRunning) {
    throw Aborted{};
  }
}

void Machine::charge_locked(int tid, double ops, double mem_intensity) {
  ThreadState& state = state_of(tid);
  state.demand_ops = std::max(0.0, ops);
  state.mem_intensity = std::clamp(mem_intensity, 0.0, 1.0);
  state.phase = Phase::WaitCompute;
}

void Machine::finish_thread_locked(int tid) {
  ThreadState& self = state_of(tid);
  self.phase = Phase::Done;
  if (running_real_ == tid) {
    running_real_ = -1;
  }
  const double join_cost_ops = spec_.us_to_ops(spec_.join_cost_us);
  for (const int joiner : self.joiners) {
    ++joins_;
    if (!aborted_) {
      if (observer_ != nullptr) {
        observer_->on_join(joiner, tid);
      }
      charge_locked(joiner, join_cost_ops, 0.0);
    }
  }
  self.joiners.clear();

  if (aborted_) {
    for (auto& thread : threads_) {
      thread->cv.notify_all();
    }
    driver_cv_.notify_all();
    return;
  }
  if (all_done()) {
    driver_cv_.notify_all();
    return;
  }
  if (running_real_ == -1) {
    schedule_next_locked();
  }
}

void Machine::abort_all_locked() {
  aborted_ = true;
  for (auto& thread : threads_) {
    thread->cv.notify_all();
  }
  driver_cv_.notify_all();
}

void Machine::check_abort_locked(int tid) const {
  (void)tid;
  if (aborted_) {
    throw Aborted{};
  }
}

// ---------------------------------------------------------------------------
// Machine: blocking API used by Context
// ---------------------------------------------------------------------------

void Machine::api_compute(int tid, double ops, double mem_intensity) {
  std::unique_lock lk(mu_);
  check_abort_locked(tid);
  if (ops <= 0.0) {
    return;
  }
  ++compute_calls_;
  total_ops_ += ops;
  charge_locked(tid, ops, mem_intensity);
  begin_wait_and_reschedule(lk, tid);
}

ThreadHandle Machine::api_spawn(int parent,
                                std::function<void(Context&)> body) {
  util::require(body != nullptr, "Context::spawn: body must be callable");
  std::unique_lock lk(mu_);
  check_abort_locked(parent);

  const int tid = static_cast<int>(threads_.size());
  auto state = std::make_unique<ThreadState>();
  state->tid = tid;
  state->phase = Phase::ReadyReal;
  state->body = std::move(body);
  threads_.push_back(std::move(state));
  busy_s_.push_back(0.0);
  enqueue_ready(tid);
  ++spawns_;
  if (observer_ != nullptr) {
    observer_->on_spawn(parent, tid);
  }
  threads_.back()->os_thread = std::thread(&Machine::thread_main, this, tid);

  if (spec_.fork_cost_us > 0.0) {
    charge_locked(parent, spec_.us_to_ops(spec_.fork_cost_us), 0.0);
    begin_wait_and_reschedule(lk, parent);
  }
  return ThreadHandle{tid};
}

void Machine::api_join(int tid, ThreadHandle child) {
  std::unique_lock lk(mu_);
  check_abort_locked(tid);
  util::require(child.tid >= 0 &&
                    child.tid < static_cast<int>(threads_.size()),
                "Context::join: invalid thread handle");
  util::require(child.tid != tid, "Context::join: a thread cannot join itself");

  ThreadState& target = state_of(child.tid);
  if (target.phase == Phase::Done) {
    ++joins_;
    if (observer_ != nullptr) {
      observer_->on_join(tid, child.tid);
    }
    if (spec_.join_cost_us > 0.0) {
      charge_locked(tid, spec_.us_to_ops(spec_.join_cost_us), 0.0);
      begin_wait_and_reschedule(lk, tid);
    }
    return;
  }
  target.joiners.push_back(tid);
  state_of(tid).phase = Phase::WaitJoin;
  begin_wait_and_reschedule(lk, tid);
}

void Machine::api_barrier(int tid, BarrierHandle handle) {
  std::unique_lock lk(mu_);
  check_abort_locked(tid);
  util::require(handle.id >= 0 &&
                    handle.id < static_cast<int>(barriers_.size()),
                "Context::barrier: invalid barrier handle");
  BarrierState& barrier = barriers_[static_cast<std::size_t>(handle.id)];
  barrier.arrived.push_back(tid);
  util::ensure(static_cast<int>(barrier.arrived.size()) <= barrier.participants,
               "Machine: more arrivals than barrier participants");

  if (static_cast<int>(barrier.arrived.size()) < barrier.participants) {
    state_of(tid).phase = Phase::WaitBarrier;
    begin_wait_and_reschedule(lk, tid);
    return;
  }

  // Last arrival: release everyone, charging the linear barrier cost.
  ++barrier_episodes_;
  if (observer_ != nullptr) {
    observer_->on_barrier(barrier.arrived);
  }
  const double cost_ops = spec_.us_to_ops(
      spec_.barrier_cost_us_per_thread *
      static_cast<double>(barrier.participants));
  for (const int participant : barrier.arrived) {
    charge_locked(participant, cost_ops, 0.0);
  }
  barrier.arrived.clear();
  begin_wait_and_reschedule(lk, tid);
}

void Machine::api_lock(int tid, MutexHandle handle) {
  std::unique_lock lk(mu_);
  check_abort_locked(tid);
  util::require(handle.id >= 0 &&
                    handle.id < static_cast<int>(mutexes_.size()),
                "Context::lock: invalid mutex handle");
  MutexState& mutex = mutexes_[static_cast<std::size_t>(handle.id)];
  util::require(mutex.owner != tid,
                "Context::lock: mutex is not recursive (self-deadlock)");

  if (mutex.owner == -1) {
    mutex.owner = tid;
    ++mutex_acquires_;
    if (observer_ != nullptr) {
      observer_->on_mutex_acquire(tid, static_cast<std::uint64_t>(handle.id));
    }
    if (spec_.mutex_acquire_cost_us > 0.0) {
      charge_locked(tid, spec_.us_to_ops(spec_.mutex_acquire_cost_us), 0.0);
      begin_wait_and_reschedule(lk, tid);
    }
    return;
  }
  mutex.waiters.push_back(tid);
  state_of(tid).phase = Phase::WaitMutex;
  begin_wait_and_reschedule(lk, tid);
}

void Machine::unlock_locked(int tid, int mutex_id) {
  MutexState& mutex = mutexes_[static_cast<std::size_t>(mutex_id)];
  util::require(mutex.owner == tid,
                "Context::unlock: calling thread does not own the mutex");

  if (observer_ != nullptr) {
    observer_->on_mutex_release(tid, static_cast<std::uint64_t>(mutex_id));
  }
  if (mutex.waiters.empty()) {
    mutex.owner = -1;
    return;
  }
  const int next = mutex.waiters.front();
  mutex.waiters.pop_front();
  mutex.owner = next;
  ++mutex_acquires_;
  if (observer_ != nullptr) {
    observer_->on_mutex_acquire(next, static_cast<std::uint64_t>(mutex_id));
  }
  // The granted thread pays the acquire cost before resuming real code.
  charge_locked(next, spec_.us_to_ops(spec_.mutex_acquire_cost_us), 0.0);
}

void Machine::api_unlock(int tid, MutexHandle handle) {
  std::unique_lock lk(mu_);
  check_abort_locked(tid);
  util::require(handle.id >= 0 &&
                    handle.id < static_cast<int>(mutexes_.size()),
                "Context::unlock: invalid mutex handle");
  unlock_locked(tid, handle.id);
}

void Machine::enqueue_for_mutex_locked(int tid, int mutex_id) {
  MutexState& mutex = mutexes_[static_cast<std::size_t>(mutex_id)];
  if (mutex.owner == -1 && mutex.waiters.empty()) {
    mutex.owner = tid;
    ++mutex_acquires_;
    if (observer_ != nullptr) {
      observer_->on_mutex_acquire(tid, static_cast<std::uint64_t>(mutex_id));
    }
    charge_locked(tid, spec_.us_to_ops(spec_.mutex_acquire_cost_us), 0.0);
    return;
  }
  mutex.waiters.push_back(tid);
  state_of(tid).phase = Phase::WaitMutex;
}

void Machine::api_wait(int tid, ConditionHandle condition,
                       MutexHandle mutex) {
  api_wait_until(tid, condition, mutex,
                 std::numeric_limits<double>::infinity());
}

bool Machine::api_wait_until(int tid, ConditionHandle condition,
                             MutexHandle mutex, double deadline_s) {
  std::unique_lock lk(mu_);
  check_abort_locked(tid);
  util::require(condition.id >= 0 &&
                    condition.id < static_cast<int>(conditions_.size()),
                "Context::wait: invalid condition handle");
  util::require(mutex.id >= 0 &&
                    mutex.id < static_cast<int>(mutexes_.size()),
                "Context::wait: invalid mutex handle");
  util::require(mutexes_[static_cast<std::size_t>(mutex.id)].owner == tid,
                "Context::wait: calling thread does not own the mutex");

  ThreadState& self = state_of(tid);
  self.timed_out = false;
  conditions_[static_cast<std::size_t>(condition.id)].waiters.push_back(
      ConditionWaiter{tid, mutex.id, deadline_s});
  unlock_locked(tid, mutex.id);
  self.phase = Phase::WaitCondition;
  begin_wait_and_reschedule(lk, tid);
  // On return the mutex has been re-acquired (the notify or the timeout
  // expiry routed this thread through the mutex queue).
  return !self.timed_out;
}

void Machine::api_notify(int tid, ConditionHandle condition, bool all) {
  std::unique_lock lk(mu_);
  check_abort_locked(tid);
  util::require(condition.id >= 0 &&
                    condition.id < static_cast<int>(conditions_.size()),
                "Context::notify: invalid condition handle");
  ConditionState& state =
      conditions_[static_cast<std::size_t>(condition.id)];
  const std::size_t wake_count =
      all ? state.waiters.size() : std::min<std::size_t>(1, state.waiters.size());
  for (std::size_t i = 0; i < wake_count; ++i) {
    const ConditionWaiter waiter = state.waiters.front();
    state.waiters.pop_front();
    enqueue_for_mutex_locked(waiter.tid, waiter.mutex_id);
  }
}

void Machine::api_yield(int tid) {
  std::unique_lock lk(mu_);
  check_abort_locked(tid);
  ThreadState& self = state_of(tid);
  self.phase = Phase::ReadyReal;
  enqueue_ready(tid);
  begin_wait_and_reschedule(lk, tid);
}

double Machine::api_now() const {
  std::lock_guard guard(mu_);
  return now_s_;
}

}  // namespace pblpar::sim
