#include "rt/loops.hpp"

#include <algorithm>
#include <limits>

#include "rt/trace.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

std::string Schedule::to_string() const {
  switch (kind) {
    case Kind::Static:
      return chunk <= 0 ? "static" : "static," + std::to_string(chunk);
    case Kind::Dynamic:
      return "dynamic," + std::to_string(std::max<std::int64_t>(1, chunk));
    case Kind::Guided:
      return "guided," + std::to_string(std::max<std::int64_t>(1, chunk));
  }
  return "?";
}

std::int64_t chunk_size_for(const Schedule& schedule, std::int64_t remaining,
                            int num_threads) {
  util::require(num_threads >= 1, "chunk_size_for: need >= 1 thread");
  if (remaining <= 0) {
    return 0;
  }
  switch (schedule.kind) {
    case Schedule::Kind::Static:
      // Static claims are precomputed per thread; this path is only used
      // if a static schedule is fed through the shared queue.
      return std::min<std::int64_t>(remaining,
                                    schedule.chunk > 0 ? schedule.chunk : 1);
    case Schedule::Kind::Dynamic:
      return std::min<std::int64_t>(
          remaining, schedule.chunk > 0 ? schedule.chunk : 1);
    case Schedule::Kind::Guided: {
      // Classic guided: half the remaining work split across the team,
      // bounded below by the requested minimum chunk.
      const std::int64_t min_chunk = schedule.chunk > 0 ? schedule.chunk : 1;
      const std::int64_t guided =
          remaining / (2 * static_cast<std::int64_t>(num_threads));
      return std::min<std::int64_t>(remaining,
                                    std::max<std::int64_t>(min_chunk, guided));
    }
  }
  return 0;
}

namespace {

void run_chunk(TeamContext& tc, std::int64_t begin, std::int64_t end,
               const std::function<void(std::int64_t)>& body,
               const CostModel& cost) {
  for (std::int64_t i = begin; i < end; ++i) {
    body(i);
  }
  if (!cost.empty()) {
    tc.compute(cost.total_ops(begin, end), cost.mem_intensity);
  }
}

/// run_chunk plus a trace record when tracing is on. The chunk's span on
/// the trace clock covers the body and (on Sim) the charged cost, so host
/// and sim timelines mean the same thing.
void run_chunk_traced(TeamContext& tc, TraceRecorder* tracer, int loop_id,
                      std::int64_t begin, std::int64_t end,
                      const std::function<void(std::int64_t)>& body,
                      const CostModel& cost) {
  if (tracer == nullptr) {
    run_chunk(tc, begin, end, body, cost);
    return;
  }
  const std::uint64_t claim_order = tracer->next_claim_order();
  const double start_s = tc.trace_now();
  run_chunk(tc, begin, end, body, cost);
  tracer->record_chunk(tc.thread_num(), loop_id, begin, end, claim_order,
                       start_s, tc.trace_now());
}

}  // namespace

void for_loop(TeamContext& tc, Range range, Schedule schedule,
              const std::function<void(std::int64_t)>& body,
              const CostModel& cost, bool barrier_at_end) {
  util::require(body != nullptr, "for_loop: body must be callable");
  const std::int64_t total = range.size();
  const int loop_id = tc.next_loop_id();
  const int num_threads = tc.num_threads();
  const int tid = tc.thread_num();
  TraceRecorder* const tracer = tc.tracer();
  if (tracer != nullptr) {
    tracer->register_loop(loop_id, schedule.to_string(), total);
  }

  if (schedule.kind == Schedule::Kind::Static) {
    if (schedule.chunk <= 0) {
      // One contiguous block per thread, remainder spread over the first
      // threads (OpenMP's default static split).
      const std::int64_t base = total / num_threads;
      const std::int64_t extra = total % num_threads;
      const std::int64_t mine = base + (tid < extra ? 1 : 0);
      const std::int64_t start =
          range.begin + tid * base + std::min<std::int64_t>(tid, extra);
      if (mine > 0) {
        run_chunk_traced(tc, tracer, loop_id, start, start + mine, body,
                         cost);
      }
    } else {
      // Round-robin chunks of the given size. The chunk is clamped to the
      // loop length (a bigger chunk cannot hand out more work anyway) so
      // the stride arithmetic below stays inside int64.
      const std::int64_t chunk =
          std::min<std::int64_t>(schedule.chunk, total);
      util::require(
          chunk <= std::numeric_limits<std::int64_t>::max() / num_threads,
          "for_loop: static chunk * num_threads overflows int64");
      const std::int64_t stride = chunk * num_threads;
      std::int64_t chunk_start = chunk * tid;
      while (chunk_start < total) {
        const std::int64_t chunk_end =
            chunk < total - chunk_start ? chunk_start + chunk : total;
        run_chunk_traced(tc, tracer, loop_id, range.begin + chunk_start,
                         range.begin + chunk_end, body, cost);
        if (stride > total - chunk_start) {
          break;  // next round-robin turn would overflow / pass the end
        }
        chunk_start += stride;
      }
    }
  } else {
    for (;;) {
      const auto [start, count] = tc.claim(loop_id, total, schedule);
      if (count == 0) {
        break;
      }
      run_chunk_traced(tc, tracer, loop_id, range.begin + start,
                       range.begin + start + count, body, cost);
    }
  }

  if (barrier_at_end) {
    tc.barrier();
  }
}

}  // namespace pblpar::rt
