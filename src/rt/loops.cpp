#include "rt/loops.hpp"

#include <algorithm>

#include "rt/for_each.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

std::string Schedule::to_string() const {
  // Exhaustive switch (no default): a new Kind without a spelling is a
  // compile-time -Wswitch error, and a corrupted kind at runtime fails
  // loudly below instead of leaking "?" into traces and bench output.
  switch (kind) {
    case Kind::Static:
      return chunk <= 0 ? "static" : "static," + std::to_string(chunk);
    case Kind::Dynamic:
      return "dynamic," + std::to_string(std::max<std::int64_t>(1, chunk));
    case Kind::Guided:
      return "guided," + std::to_string(std::max<std::int64_t>(1, chunk));
    case Kind::Steal:
      return chunk <= 0 ? "steal" : "steal," + std::to_string(chunk);
  }
  throw util::PreconditionError("Schedule::to_string: invalid Kind value");
}

std::int64_t chunk_size_for(const Schedule& schedule, std::int64_t remaining,
                            int num_threads) {
  util::require(num_threads >= 1, "chunk_size_for: need >= 1 thread");
  if (remaining <= 0) {
    return 0;
  }
  switch (schedule.kind) {
    case Schedule::Kind::Static:
      // Static claims are precomputed per thread; this path is only used
      // if a static schedule is fed through the shared queue.
      return std::min<std::int64_t>(remaining,
                                    schedule.chunk > 0 ? schedule.chunk : 1);
    case Schedule::Kind::Dynamic:
      return std::min<std::int64_t>(
          remaining, schedule.chunk > 0 ? schedule.chunk : 1);
    case Schedule::Kind::Guided: {
      // Classic guided: half the remaining work split across the team,
      // bounded below by the requested minimum chunk.
      const std::int64_t min_chunk = schedule.chunk > 0 ? schedule.chunk : 1;
      const std::int64_t guided =
          remaining / (2 * static_cast<std::int64_t>(num_threads));
      return std::min<std::int64_t>(remaining,
                                    std::max<std::int64_t>(min_chunk, guided));
    }
    case Schedule::Kind::Steal:
      // Steal claims go through the per-thread deques, not the shared
      // queue; behave like dynamic if fed through it anyway.
      return std::min<std::int64_t>(
          remaining, schedule.chunk > 0 ? schedule.chunk : 1);
  }
  throw util::PreconditionError("chunk_size_for: invalid Schedule::Kind");
}

std::int64_t steal_chunk_size(const Schedule& schedule, std::int64_t total,
                              int num_threads) {
  util::require(num_threads >= 1, "steal_chunk_size: need >= 1 thread");
  if (total <= 0) {
    return 1;
  }
  if (schedule.chunk > 0) {
    return std::min<std::int64_t>(schedule.chunk, total);
  }
  // Auto chunk: aim for ~16 chunks per thread. Coarse enough that a
  // thread's claims are mostly uncontended local pops, fine enough that a
  // thread stuck on a heavy block still has chunks worth stealing.
  constexpr std::int64_t kChunksPerThread = 16;
  const std::int64_t target =
      static_cast<std::int64_t>(num_threads) * kChunksPerThread;
  return std::max<std::int64_t>(1, (total + target - 1) / target);
}

StealSpan steal_initial_span(std::int64_t total, std::int64_t chunk,
                             int num_threads, int tid) {
  util::require(chunk >= 1, "steal_initial_span: chunk must be >= 1");
  util::require(tid >= 0 && tid < num_threads,
                "steal_initial_span: tid out of range");
  const std::int64_t num_chunks =
      total > 0 ? (total + chunk - 1) / chunk : 0;
  const std::int64_t base = num_chunks / num_threads;
  const std::int64_t extra = num_chunks % num_threads;
  const std::int64_t lo = tid * base + std::min<std::int64_t>(tid, extra);
  return StealSpan{lo, lo + base + (tid < extra ? 1 : 0)};
}

StealClaim steal_claim_for(std::int64_t chunk_index, std::int64_t chunk,
                           std::int64_t total, int victim) {
  util::require(chunk >= 1, "steal_claim_for: chunk must be >= 1");
  const std::int64_t begin = chunk_index * chunk;
  util::require(begin >= 0 && begin < total,
                "steal_claim_for: chunk index outside the loop");
  return StealClaim{begin, std::min<std::int64_t>(chunk, total - begin),
                    victim};
}

void for_loop(TeamContext& tc, Range range, Schedule schedule,
              const std::function<void(std::int64_t)>& body,
              const CostModel& cost, bool barrier_at_end) {
  util::require(body != nullptr, "for_loop: body must be callable");
  // Thin type-erased wrapper: all scheduling logic lives in the templated
  // for_each; this call just pays one std::function hop per iteration.
  for_each(tc, range, schedule, body, cost, barrier_at_end);
}

}  // namespace pblpar::rt
