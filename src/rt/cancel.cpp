#include "rt/cancel.hpp"

#include <cmath>
#include <sstream>

#include "rt/trace.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

std::string to_string(CancelCause cause) {
  // Exhaustive switch (no default): a new CancelCause without a name is a
  // compile-time -Wswitch error; a corrupted value fails loudly here.
  switch (cause) {
    case CancelCause::Token:
      return "token";
    case CancelCause::Deadline:
      return "deadline";
  }
  throw util::PreconditionError("to_string: invalid CancelCause value");
}

namespace {

std::string cancelled_message(CancelCause cause,
                              const std::vector<std::int64_t>& completed) {
  std::int64_t total = 0;
  for (const std::int64_t count : completed) {
    total += count;
  }
  std::ostringstream os;
  os << "pblpar::rt::Cancelled: parallel region cancelled (" << to_string(cause)
     << ") after " << total << " completed iteration(s) across "
     << completed.size() << " thread(s)";
  return os.str();
}

}  // namespace

Cancelled::Cancelled(CancelCause cause, std::vector<std::int64_t> completed,
                     std::shared_ptr<const RunProfile> profile)
    : std::runtime_error(cancelled_message(cause, completed)),
      cause_(cause),
      completed_(std::move(completed)),
      profile_(std::move(profile)) {}

std::int64_t Cancelled::total_completed() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t count : completed_) {
    total += count;
  }
  return total;
}

void ChaosPlan::validate() const {
  const auto probability_ok = [](double p) {
    return std::isfinite(p) && p >= 0.0 && p <= 1.0;
  };
  util::require(probability_ok(delay_probability),
                "ChaosPlan: delay_probability must be in [0, 1]");
  util::require(probability_ok(throw_probability),
                "ChaosPlan: throw_probability must be in [0, 1]");
  util::require(std::isfinite(delay_s) && delay_s >= 0.0,
                "ChaosPlan: delay_s must be finite and non-negative");
}

ChaosInjected::ChaosInjected(int tid, std::uint64_t nth_claim)
    : std::runtime_error("pblpar::rt::ChaosInjected: chaos plan threw at t" +
                         std::to_string(tid) + "'s chunk claim #" +
                         std::to_string(nth_claim)),
      tid_(tid),
      nth_claim_(nth_claim) {}

std::unique_ptr<RegionGovernor> RegionGovernor::for_region(
    const CancelToken& token, double deadline_s, const ChaosPlan& chaos,
    int num_threads) {
  if (!token.valid() && deadline_s <= 0.0 && chaos.empty()) {
    return nullptr;
  }
  chaos.validate();
  // make_unique needs a public constructor; new keeps it private.
  return std::unique_ptr<RegionGovernor>(
      new RegionGovernor(token, deadline_s, chaos, num_threads));
}

RegionGovernor::RegionGovernor(const CancelToken& token, double deadline_s,
                               const ChaosPlan& chaos, int num_threads)
    : token_(token),
      deadline_s_(deadline_s),
      chaos_(chaos),
      chaos_armed_(!chaos.empty()),
      slots_(static_cast<std::size_t>(num_threads)) {
  // One independent xoshiro stream per member, derived from the plan seed
  // in tid order — the draw sequence each member sees depends only on
  // (seed, tid), never on scheduling.
  util::SplitMix64 mix(chaos_.seed);
  for (MemberSlot& slot : slots_) {
    slot.rng = util::Rng(mix.next());
  }
}

void RegionGovernor::fire(CancelCause cause, double now) {
  if (fire_claimed_.exchange(true, std::memory_order_acq_rel)) {
    return;  // a peer already fired; this member just drains
  }
  cause_ = cause;
  fired_at_s_ = now;
  stop_.store(true, std::memory_order_release);
  if (abort_team) {
    abort_team();
  }
}

void RegionGovernor::throw_cancelled(TeamContext& tc, int tid) {
  MemberSlot& slot = slots_[static_cast<std::size_t>(tid)];
  if (!slot.cancel_recorded) {
    slot.cancel_recorded = true;
    if (TraceRecorder* tracer = tc.tracer()) {
      tracer->record_cancel(tid, tc.trace_now(), to_string(cause_),
                            slot.completed);
    }
  }
  throw detail::CancelSignal{};
}

void RegionGovernor::at_claim(TeamContext& tc, int tid) {
  if (stop_.load(std::memory_order_acquire)) {
    throw_cancelled(tc, tid);
  }
  if (token_.cancel_requested()) {
    fire(CancelCause::Token, tc.trace_now());
    throw_cancelled(tc, tid);
  }
  if (deadline_s_ > 0.0 && tc.trace_now() >= deadline_s_) {
    fire(CancelCause::Deadline, tc.trace_now());
    throw_cancelled(tc, tid);
  }
  if (chaos_armed_) {
    MemberSlot& slot = slots_[static_cast<std::size_t>(tid)];
    const std::uint64_t nth = slot.claims++;
    // Fixed draw order per claim — throw, then delay — so a given plan's
    // per-member streams replay identically run to run.
    if (chaos_.throw_probability > 0.0 &&
        slot.rng.bernoulli(chaos_.throw_probability)) {
      if (TraceRecorder* tracer = tc.tracer()) {
        tracer->record_inject(tid, tc.trace_now(), "throw", 0.0);
      }
      throw ChaosInjected(tid, nth);
    }
    if (chaos_.delay_probability > 0.0 &&
        slot.rng.bernoulli(chaos_.delay_probability)) {
      if (TraceRecorder* tracer = tc.tracer()) {
        tracer->record_inject(tid, tc.trace_now(), "delay", chaos_.delay_s);
      }
      tc.inject_delay(chaos_.delay_s);
    }
  }
}

std::vector<std::int64_t> RegionGovernor::completed_counts() const {
  std::vector<std::int64_t> counts;
  counts.reserve(slots_.size());
  for (const MemberSlot& slot : slots_) {
    counts.push_back(slot.completed);
  }
  return counts;
}

}  // namespace pblpar::rt
