#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "rt/parallel.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

/// Value + execution report of a parallel reduction.
template <class T>
struct ReduceResult {
  T value{};
  RunResult run;
};

/// How the reduction combines partial results — the paper's Assignment 4
/// contrasts the reduction clause with a critical section per iteration.
enum class ReduceStrategy {
  /// OpenMP `reduction(...)` semantics: each thread accumulates privately
  /// and partials merge once at the end.
  PerThreadPartials,

  /// The classroom anti-pattern: every iteration updates the shared result
  /// inside a critical section. Correct but serialized.
  CriticalPerIteration,
};

/// Worksharing reduction inside an existing team (OpenMP's
/// `#pragma omp for reduction(...)`). Every member must call it.
/// Ends with a team barrier; `result` is complete after that barrier.
///
/// `salvage` (PerThreadPartials only) rescues partial progress from a
/// cancelled or failed region: when the loop unwinds before the merge,
/// each member moves its private partial into `(*salvage)[tid]` and the
/// exception continues — so a caller catching rt::Cancelled can still
/// combine whatever completed. Slots of members whose partial already
/// merged into `result` (or who ran no iterations) stay empty. The vector
/// must hold at least num_threads slots and outlive the region.
template <class T, class MapFn, class CombineFn>
void reduce_loop(TeamContext& tc, Range range, Schedule schedule, T& result,
                 MapFn map, CombineFn combine, const CostModel& cost = {},
                 ReduceStrategy strategy = ReduceStrategy::PerThreadPartials,
                 std::vector<std::optional<T>>* salvage = nullptr) {
  if (strategy == ReduceStrategy::PerThreadPartials) {
    if (salvage != nullptr) {
      util::require(static_cast<int>(salvage->size()) >= tc.num_threads(),
                    "reduce_loop: salvage needs one slot per team member");
    }
    // The partial lives in an optional so T never needs to be
    // default-constructible — OpenMP initializes reduction privates from
    // the operation's identity, but a generic combine has no identity to
    // offer, so "no iterations ran here" is simply an empty partial.
    std::optional<T> local;
    try {
      for_loop(
          tc, range, schedule,
          [&](std::int64_t i) {
            if (local.has_value()) {
              local = combine(*std::move(local), map(i));
            } else {
              local = map(i);
            }
          },
          cost, /*barrier_at_end=*/false);
    } catch (...) {
      // Each member writes only its own slot, and the caller reads them
      // after the region join — no two threads ever touch one slot.
      if (salvage != nullptr && local.has_value()) {
        (*salvage)[static_cast<std::size_t>(tc.thread_num())] =
            std::move(local);
      }
      throw;  // always rethrow: on Sim this includes the abort signal
    }
    if (local.has_value()) {
      tc.critical([&] { result = combine(result, *std::move(local)); });
    }
    tc.barrier();
  } else {
    for_loop(
        tc, range, schedule,
        [&](std::int64_t i) {
          const T term = map(i);
          tc.critical([&] { result = combine(result, term); });
        },
        cost, /*barrier_at_end=*/true);
  }
}

/// Whole-region reduction (parallel + for + reduction), the TeachMP
/// analogue of `#pragma omp parallel for reduction(...)`.
template <class T, class MapFn, class CombineFn>
ReduceResult<T> parallel_reduce(
    const ParallelConfig& config, Range range, Schedule schedule, T identity,
    MapFn map, CombineFn combine, const CostModel& cost = {},
    ReduceStrategy strategy = ReduceStrategy::PerThreadPartials,
    std::vector<std::optional<T>>* salvage = nullptr) {
  // Aggregate-init from the identity: ReduceResult's `T value{}` member
  // initializer is never instantiated this way, so non-default-
  // constructible accumulators work here too.
  ReduceResult<T> reduced{std::move(identity), RunResult{}};
  reduced.run = parallel(config, [&](TeamContext& tc) {
    reduce_loop(tc, range, schedule, reduced.value, map, combine, cost,
                strategy, salvage);
  });
  return reduced;
}

}  // namespace pblpar::rt
