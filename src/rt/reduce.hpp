#pragma once

#include <optional>
#include <utility>

#include "rt/parallel.hpp"

namespace pblpar::rt {

/// Value + execution report of a parallel reduction.
template <class T>
struct ReduceResult {
  T value{};
  RunResult run;
};

/// How the reduction combines partial results — the paper's Assignment 4
/// contrasts the reduction clause with a critical section per iteration.
enum class ReduceStrategy {
  /// OpenMP `reduction(...)` semantics: each thread accumulates privately
  /// and partials merge once at the end.
  PerThreadPartials,

  /// The classroom anti-pattern: every iteration updates the shared result
  /// inside a critical section. Correct but serialized.
  CriticalPerIteration,
};

/// Worksharing reduction inside an existing team (OpenMP's
/// `#pragma omp for reduction(...)`). Every member must call it.
/// Ends with a team barrier; `result` is complete after that barrier.
template <class T, class MapFn, class CombineFn>
void reduce_loop(TeamContext& tc, Range range, Schedule schedule, T& result,
                 MapFn map, CombineFn combine, const CostModel& cost = {},
                 ReduceStrategy strategy = ReduceStrategy::PerThreadPartials) {
  if (strategy == ReduceStrategy::PerThreadPartials) {
    // The partial lives in an optional so T never needs to be
    // default-constructible — OpenMP initializes reduction privates from
    // the operation's identity, but a generic combine has no identity to
    // offer, so "no iterations ran here" is simply an empty partial.
    std::optional<T> local;
    for_loop(
        tc, range, schedule,
        [&](std::int64_t i) {
          if (local.has_value()) {
            local = combine(*std::move(local), map(i));
          } else {
            local = map(i);
          }
        },
        cost, /*barrier_at_end=*/false);
    if (local.has_value()) {
      tc.critical([&] { result = combine(result, *std::move(local)); });
    }
    tc.barrier();
  } else {
    for_loop(
        tc, range, schedule,
        [&](std::int64_t i) {
          const T term = map(i);
          tc.critical([&] { result = combine(result, term); });
        },
        cost, /*barrier_at_end=*/true);
  }
}

/// Whole-region reduction (parallel + for + reduction), the TeachMP
/// analogue of `#pragma omp parallel for reduction(...)`.
template <class T, class MapFn, class CombineFn>
ReduceResult<T> parallel_reduce(
    const ParallelConfig& config, Range range, Schedule schedule, T identity,
    MapFn map, CombineFn combine, const CostModel& cost = {},
    ReduceStrategy strategy = ReduceStrategy::PerThreadPartials) {
  // Aggregate-init from the identity: ReduceResult's `T value{}` member
  // initializer is never instantiated this way, so non-default-
  // constructible accumulators work here too.
  ReduceResult<T> reduced{std::move(identity), RunResult{}};
  reduced.run = parallel(config, [&](TeamContext& tc) {
    reduce_loop(tc, range, schedule, reduced.value, map, combine, cost,
                strategy);
  });
  return reduced;
}

}  // namespace pblpar::rt
