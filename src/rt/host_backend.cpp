#include "rt/host_backend.hpp"

#include "rt/loops.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rt/cancel.hpp"
#include "rt/steal_deque.hpp"
#include "rt/trace.hpp"
#include "util/error.hpp"

#include <cassert>

namespace pblpar::rt {

AbortableBarrier::AbortableBarrier(int parties) : parties_(parties) {
  util::require(parties >= 1, "AbortableBarrier: need at least one party");
}

/// How many yields a barrier waiter spends watching the generation before
/// parking on the condvar. A yielding spinner cedes its core to members
/// still computing, so each spin costs one pass through the scheduler,
/// not stolen compute — and a release during the spin is seen without any
/// futex wake. Sized like the pool's kDoneSpins: spinners with no
/// runnable peers burn through it in well under a millisecond.
constexpr int kBarrierSpins = 4096;

void AbortableBarrier::arrive_and_wait() {
  std::unique_lock lk(mu_);
  if (aborted_.load(std::memory_order_relaxed)) {
    throw TeamAborted{};
  }
  const std::uint64_t my_generation =
      generation_.load(std::memory_order_relaxed);
  if (++arrived_ == parties_) {
    arrived_ = 0;
    generation_.store(my_generation + 1, std::memory_order_release);
    // Unlock before notifying: woken waiters re-acquire mu_ to re-check
    // the predicate, and waking them while still holding it would march
    // each one straight from the futex into a mutex collision — on a
    // busy host that is an extra context switch per waiter per barrier.
    lk.unlock();
    cv_.notify_all();
    return;
  }
  lk.unlock();
  // Spin phase: watch the generation from user space. The releaser's
  // store-release on generation_ happens after it observed (under mu_)
  // every party's arrival, so an acquire load of the new generation also
  // carries every member's pre-barrier writes.
  for (int spin = 0; spin < kBarrierSpins; ++spin) {
    if (generation_.load(std::memory_order_acquire) != my_generation) {
      if (aborted_.load(std::memory_order_acquire)) {
        throw TeamAborted{};
      }
      return;
    }
    if (aborted_.load(std::memory_order_acquire)) {
      throw TeamAborted{};
    }
    std::this_thread::yield();
  }
  lk.lock();
  cv_.wait(lk, [&] {
    return generation_.load(std::memory_order_relaxed) != my_generation ||
           aborted_.load(std::memory_order_relaxed);
  });
  // Abort wins over a concurrent release: without the plain re-check a
  // waiter whose generation was bumped in the same mutex epoch as abort()
  // would return normally and the abort would be lost until (unless) it
  // reached another barrier.
  if (aborted_.load(std::memory_order_relaxed)) {
    throw TeamAborted{};
  }
}

void AbortableBarrier::abort() {
  {
    std::lock_guard guard(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void AbortableBarrier::reset(int parties) {
  util::require(parties >= 1, "AbortableBarrier: need at least one party");
  std::lock_guard guard(mu_);
  parties_ = parties;
  arrived_ = 0;
  aborted_ = false;
}

namespace {

/// Worksharing bookkeeping shared by all members of a host team.
/// Loop counters and single-arrival flags are preallocated so claims are
/// lock-free; 256 worksharing constructs per region is far beyond any of
/// the course workloads.
constexpr int kMaxWorksharing = 256;

/// One thread's steal deque: its remaining chunk-index span per loop as a
/// lock-free Chase–Lev deque (see rt/steal_deque.hpp). Deques default to
/// empty, so a thief that scans one before its owner reached
/// steal_install simply moves on — the owner still drains everything it
/// later installs. `chunks` caches the loop's chunk size, hoisted once in
/// steal_install so the claim fast path never repeats the division; it is
/// owner-written before the owner's first claim and owner-read only.
/// Cache-line aligned: the owner hammers its own deque on every local
/// pop, and with the deques living for the whole process (the team is
/// reused across regions) two owners sharing a line would pay false
/// sharing on every chunk, not just within one region.
struct alignas(kCacheLineBytes) StealDeque {
  std::array<ChaseLevSpan, kMaxWorksharing> spans;
  std::array<std::int64_t, kMaxWorksharing> chunks{};
  /// Deques [0, dirty) may be stale from an earlier region; freshly built
  /// deques start clean. Guarded by the team reset protocol.
  int dirty = 0;
};

struct HostTeam {
  explicit HostTeam(int nthreads) : num_threads(nthreads), barrier(nthreads) {
    grow_deques(nthreads);
    clear_worksharing(nthreads);
  }

  /// Re-arm this team for a fresh region of `nthreads` members. Only
  /// valid when no member of the previous region is still running — the
  /// pool observes every member's exit (unfinished count reaching zero)
  /// before calling this.
  void reset(int nthreads, TraceRecorder* recorder,
             std::chrono::steady_clock::time_point epoch,
             RegionGovernor* region_governor) {
    const int prev_width = num_threads;
    num_threads = nthreads;
    barrier.reset(nthreads);
    grow_deques(nthreads);
    clear_worksharing(prev_width);
    aborted.store(false, std::memory_order_relaxed);
    tracer = recorder;
    trace_epoch = epoch;
    governor = region_governor;
  }

  void grow_deques(int nthreads) {
    while (static_cast<int>(steal_deques.size()) < nthreads) {
      steal_deques.push_back(std::make_unique<StealDeque>());
    }
  }

  /// Re-arm the worksharing slots the previous region dirtied: its
  /// members reported their high-water construct count into
  /// worksharing_high_water, so only [0, used) of the counters and single
  /// flags need clearing — not the whole preallocated table on every
  /// region launch. Steal spans are tracked per deque: the finished
  /// region (width `prev_width`) dirtied its deques up to `used`, and a
  /// deque parked outside the current width keeps its dirty mark until a
  /// later region widens over it.
  void clear_worksharing(int prev_width) {
    const int used = std::min(
        worksharing_high_water.exchange(0, std::memory_order_relaxed),
        kMaxWorksharing);
    for (int id = 0; id < used; ++id) {
      loop_counters[static_cast<std::size_t>(id)].store(
          0, std::memory_order_relaxed);
      single_arrivals[static_cast<std::size_t>(id)].store(
          0, std::memory_order_relaxed);
    }
    for (int tid = 0; tid < prev_width; ++tid) {
      StealDeque& deque = *steal_deques[static_cast<std::size_t>(tid)];
      deque.dirty = std::max(deque.dirty, used);
    }
    for (int tid = 0; tid < num_threads; ++tid) {
      StealDeque& deque = *steal_deques[static_cast<std::size_t>(tid)];
      if (deque.dirty == 0) {
        continue;
      }
      // Plain relaxed clears: the deque is quiescent (every member of the
      // previous region has exited, observed by the pool before reset),
      // and the pool's generation handoff publishes these stores to the
      // next region's members before any of them runs.
      for (int id = 0; id < deque.dirty; ++id) {
        deque.spans[static_cast<std::size_t>(id)].clear();
      }
      deque.dirty = 0;
    }
  }

  int num_threads;
  AbortableBarrier barrier;
  std::mutex critical_mu;
  std::array<std::atomic<std::int64_t>, kMaxWorksharing> loop_counters;
  std::array<std::atomic<int>, kMaxWorksharing> single_arrivals;
  /// Indexed by tid; unique_ptr so the deques keep their cache-line
  /// alignment and their addresses survive grow_deques reallocating the
  /// vector when a later region widens the team.
  std::vector<std::unique_ptr<StealDeque>> steal_deques;
  std::atomic<bool> aborted{false};
  /// Max worksharing constructs any member of the last region opened
  /// (CAS-max by each member as it finishes). Starts at the table size so
  /// the first clear wipes the uninitialized atomics.
  std::atomic<int> worksharing_high_water{kMaxWorksharing};

  /// Observability (null / unset when tracing is off).
  TraceRecorder* tracer = nullptr;
  std::chrono::steady_clock::time_point trace_epoch;

  /// Cancellation/chaos governor of the current region (null when neither
  /// is armed — then the loop drivers never poll).
  RegionGovernor* governor = nullptr;
};

class HostTeamContext final : public TeamContext {
 public:
  HostTeamContext(HostTeam& team, int tid) : team_(&team), tid_(tid) {}

  int thread_num() const override { return tid_; }
  int num_threads() const override { return team_->num_threads; }

  TraceRecorder* tracer() override { return team_->tracer; }

  RegionGovernor* governor() override { return team_->governor; }

  void inject_delay(double seconds) override {
    // Yield-spin in real time, like the pool's park spins: on an
    // oversubscribed host the stalled member cedes its core instead of
    // burning it, which is the "slow thread" a chaos delay models.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < until) {
      std::this_thread::yield();
    }
  }

  double trace_now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         team_->trace_epoch)
        .count();
  }

  void barrier() override {
    if (team_->tracer == nullptr) {
      team_->barrier.arrive_and_wait();
      return;
    }
    const double arrive_s = trace_now();
    team_->barrier.arrive_and_wait();
    team_->tracer->record_barrier(tid_, arrive_s, trace_now());
  }

  void critical(const std::function<void()>& body) override {
    if (team_->tracer == nullptr) {
      std::lock_guard guard(team_->critical_mu);
      body();
      return;
    }
    const double request_s = trace_now();
    double acquire_s = 0.0;
    double release_s = 0.0;
    {
      std::lock_guard guard(team_->critical_mu);
      acquire_s = trace_now();
      body();
      release_s = trace_now();
    }
    team_->tracer->record_critical(tid_, request_s, acquire_s, release_s);
  }

  void single(const std::function<void()>& body) override {
    const int id = next_single_id_++;
    util::require(id < kMaxWorksharing,
                  "TeamContext::single: too many worksharing constructs");
    if (team_->single_arrivals[static_cast<std::size_t>(id)].fetch_add(1) ==
        0) {
      if (team_->tracer != nullptr) {
        team_->tracer->record_single_winner(tid_, id);
      }
      body();
    }
    barrier();
  }

  void compute(double ops, double mem_intensity) override {
    // Host execution is real work in real time; modelled cost is ignored.
    (void)ops;
    (void)mem_intensity;
  }

  std::pair<std::int64_t, std::int64_t> claim(
      int loop_id, std::int64_t total, const Schedule& schedule) override {
    util::require(loop_id >= 0 && loop_id < kMaxWorksharing,
                  "TeamContext::claim: too many worksharing loops");
    // Relaxed ordering throughout: a claim only needs atomicity so chunks
    // stay disjoint. Cross-thread data visibility is the job of barriers
    // and the region join, exactly as in OpenMP.
    auto& counter = team_->loop_counters[static_cast<std::size_t>(loop_id)];
    if (schedule.kind == Schedule::Kind::Guided) {
      // Guided chunks shrink with the remaining work, so the claim must
      // read `remaining` and publish its grab atomically: a CAS loop.
      std::int64_t current = counter.load(std::memory_order_relaxed);
      for (;;) {
        if (current >= total) {
          return {total, 0};
        }
        const std::int64_t size =
            chunk_size_for(schedule, total - current, team_->num_threads);
        if (counter.compare_exchange_weak(current, current + size,
                                          std::memory_order_relaxed)) {
          return {current, size};
        }
      }
    }
    // Every other schedule hands out fixed-size chunks, so one wait-free
    // fetch_add claims the next one. Threads racing past the end each
    // overshoot the counter by at most one clamped grab, which the bounds
    // check discards.
    const std::int64_t grab = fixed_claim_size(schedule, total);
    const std::int64_t start =
        counter.fetch_add(grab, std::memory_order_relaxed);
    if (start >= total) {
      return {total, 0};
    }
    return {start, grab < total - start ? grab : total - start};
  }

  std::atomic<std::int64_t>* claim_counter(int loop_id) override {
    util::require(loop_id >= 0 && loop_id < kMaxWorksharing,
                  "TeamContext::claim_counter: too many worksharing loops");
    return &team_->loop_counters[static_cast<std::size_t>(loop_id)];
  }

  void steal_install(int loop_id, std::int64_t total,
                     const Schedule& schedule) override {
    util::require(loop_id >= 0 && loop_id < kMaxWorksharing,
                  "TeamContext::steal_install: too many worksharing loops");
    const std::int64_t chunk =
        steal_chunk_size(schedule, total, team_->num_threads);
    StealDeque& mine = *team_->steal_deques[static_cast<std::size_t>(tid_)];
    // Hoist the chunk size per (loop_id, region): every later claim —
    // including every failed victim probe — reads this cache instead of
    // redoing the division. Owner-written, owner-read; the chunk size is
    // a pure function of (schedule, total, num_threads), identical on
    // every member, so each owner's cache agrees with every thief's.
    mine.chunks[static_cast<std::size_t>(loop_id)] = chunk;
    mine.spans[static_cast<std::size_t>(loop_id)].install(
        steal_initial_span(total, chunk, team_->num_threads, tid_));
  }

  StealClaim steal_next(int loop_id, std::int64_t total,
                        const Schedule& schedule) override {
    util::require(loop_id >= 0 && loop_id < kMaxWorksharing,
                  "TeamContext::steal_next: too many worksharing loops");
    StealDeque& mine = *team_->steal_deques[static_cast<std::size_t>(tid_)];
    const std::int64_t chunk =
        mine.chunks[static_cast<std::size_t>(loop_id)];
    // Regression guard (debug builds): the hoisted value must match what
    // the per-claim recomputation would have produced.
    assert(chunk == steal_chunk_size(schedule, total, team_->num_threads));
    (void)schedule;
    // Own deque first: pop the lowest chunk index, an ascending walk of
    // our block (the LIFO end relative to how the block was dealt). The
    // owner-side take is wait-free except when racing a thief for the
    // very last element.
    std::int64_t chunk_index = 0;
    if (mine.spans[static_cast<std::size_t>(loop_id)].take(&chunk_index)) {
      return steal_claim_for(chunk_index, chunk, total, tid_);
    }
    // Then scan peers round-robin starting at our right-hand neighbour,
    // stealing from the FIFO end — the chunk the victim would reach last.
    // A lost CAS means some other claimant took a chunk from this victim;
    // retry the same deque, since it may still hold more.
    for (int k = 1; k < team_->num_threads; ++k) {
      const int victim = (tid_ + k) % team_->num_threads;
      ChaseLevSpan& theirs =
          team_->steal_deques[static_cast<std::size_t>(victim)]
              ->spans[static_cast<std::size_t>(loop_id)];
      for (;;) {
        const StealOutcome outcome = theirs.steal(&chunk_index);
        if (outcome == StealOutcome::kGot) {
          return steal_claim_for(chunk_index, chunk, total, victim);
        }
        if (outcome == StealOutcome::kEmpty) {
          break;
        }
      }
    }
    return StealClaim{total, 0, tid_};
  }

  /// Highest worksharing slot this member touched, for the team's
  /// proportional re-arm between regions.
  int worksharing_used() const {
    return std::max(loop_ids_issued(), next_single_id_);
  }

 private:
  HostTeam* team_;
  int tid_;
  int next_single_id_ = 0;
};

/// One team member's run: execute the body, swallow TeamAborted (another
/// member failed and this one just unwound past its barriers) and
/// CancelSignal (this member observed cancellation at a chunk boundary —
/// the governor's fire() already aborted the team barrier, and the region
/// join converts the drain into rt::Cancelled), convert anything else
/// into a recorded error plus a team-wide barrier abort.
void run_member(HostTeam& team, int tid,
                const std::function<void(TeamContext&)>& body,
                std::vector<std::exception_ptr>& errors) {
  HostTeamContext ctx(team, tid);
  try {
    body(ctx);
  } catch (const TeamAborted&) {
    // Another member failed; we just unwound past its barriers.
  } catch (const detail::CancelSignal&) {
    // Cooperative cancellation: not an error, so nothing is recorded —
    // finish_region reads the verdict off the governor instead.
  } catch (...) {
    errors[static_cast<std::size_t>(tid)] = std::current_exception();
    team.aborted.store(true);
    team.barrier.abort();
  }
  const int used = ctx.worksharing_used();
  int seen = team.worksharing_high_water.load(std::memory_order_relaxed);
  while (seen < used && !team.worksharing_high_water.compare_exchange_weak(
                            seen, used, std::memory_order_relaxed)) {
  }
}

/// Regions that could not take the pool (nested/concurrent, or opted out)
/// and spawned a fresh team instead.
std::atomic<std::uint64_t> g_spawned_regions{0};

/// The process-wide observer behind rt::pool_snapshot(): every traced
/// region offers its recorder with try_attach, so the first one up is the
/// one a snapshot sees, and detach_if guarantees an overlapping region
/// never yanks a recorder it did not attach.
RegionObserver& pool_observer() {
  static RegionObserver observer;
  return observer;
}

/// RAII attach of a traced region's recorder to the process-wide pool
/// observer. Like ObserverAttach below, declared after the recorder so it
/// detaches (draining in-flight pool_snapshot readers) strictly before
/// the recorder dies.
struct PoolObserverAttach {
  const TraceRecorder* attached = nullptr;

  explicit PoolObserverAttach(const TraceRecorder* recorder) {
    if (recorder != nullptr && pool_observer().try_attach(recorder)) {
      attached = recorder;
    }
  }
  ~PoolObserverAttach() {
    if (attached != nullptr) {
      pool_observer().detach_if(attached);
    }
  }
  PoolObserverAttach(const PoolObserverAttach&) = delete;
  PoolObserverAttach& operator=(const PoolObserverAttach&) = delete;
};

/// RAII attach of a config's RegionObserver to the region's recorder.
/// Declared after the recorder in both launch paths, so destruction
/// detaches (blocking out in-flight snapshot readers) strictly before
/// the recorder dies.
struct ObserverAttach {
  RegionObserver* observer = nullptr;

  ObserverAttach(const ParallelConfig& config, TraceRecorder* recorder) {
    if (config.observer != nullptr && recorder != nullptr) {
      observer = config.observer.get();
      observer->attach(recorder);
    }
  }
  ~ObserverAttach() {
    if (observer != nullptr) {
      observer->detach();
    }
  }
  ObserverAttach(const ObserverAttach&) = delete;
  ObserverAttach& operator=(const ObserverAttach&) = delete;
};

RunResult finish_region(std::vector<std::exception_ptr>& errors,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end,
                        TraceRecorder* recorder, RegionGovernor* governor) {
  // Real errors win over cancellation: a body that threw mid-drain (or a
  // ChaosInjected) is what the caller must see first.
  for (const auto& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
  const double region_s =
      std::chrono::duration<double>(end - start).count();
  if (governor != nullptr && governor->fired()) {
    std::shared_ptr<const RunProfile> profile;
    if (recorder != nullptr) {
      profile =
          std::make_shared<const RunProfile>(recorder->finish(region_s));
    }
    throw Cancelled(governor->cause(), governor->completed_counts(),
                    std::move(profile));
  }
  RunResult result;
  result.host_seconds = region_s;
  if (recorder != nullptr) {
    result.profile = std::make_shared<const RunProfile>(
        recorder->finish(result.host_seconds));
  }
  return result;
}

/// The pre-pool execution path: spawn a fresh team of jthreads for this
/// region and join them at the end. Still used when the config opts out
/// of the pool and when a nested/concurrent region finds the pool busy.
RunResult host_parallel_spawn(const ParallelConfig& config,
                              const std::function<void(TeamContext&)>& body) {
  const int num_threads = config.num_threads;
  HostTeam team(num_threads);
  std::unique_ptr<TraceRecorder> recorder;
  if (config.record_trace) {
    recorder =
        std::make_unique<TraceRecorder>(num_threads, TraceClock::HostSteady);
    team.tracer = recorder.get();
  }
  ObserverAttach observer_attach(config, recorder.get());
  PoolObserverAttach pool_attach(recorder.get());
  g_spawned_regions.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<RegionGovernor> governor = RegionGovernor::for_region(
      config.cancel_token, config.deadline_s, config.chaos, num_threads);
  if (governor != nullptr) {
    team.governor = governor.get();
    governor->abort_team = [&team] { team.barrier.abort(); };
  }

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_threads));

  const auto start = std::chrono::steady_clock::now();
  team.trace_epoch = start;
  {
    std::vector<std::jthread> members;
    members.reserve(static_cast<std::size_t>(num_threads));
    for (int tid = 0; tid < num_threads; ++tid) {
      members.emplace_back(
          [&team, &errors, &body, tid] { run_member(team, tid, body, errors); });
    }
  }  // jthreads join here
  const auto end = std::chrono::steady_clock::now();
  return finish_region(errors, start, end, recorder.get(), governor.get());
}

/// How long threads yield-spin before touching the kernel. Workers spin
/// kParkSpins yields after a region before parking on the condvar, and
/// the caller spins kDoneSpins yields before sleeping for region end —
/// back-to-back regions (thread-count sweeps, benches, MapReduce phases)
/// then hand off entirely in user space. Yield, not pause: on an
/// oversubscribed host (more runnable threads than cores) a yielding
/// spinner cedes its core to whoever has real work, so the burn is
/// bounded scheduler churn rather than stolen compute.
/// kParkSpins is sized so a region-dense phase keeps its workers in the
/// spin the whole time: a handful of wasted yields between regions is
/// cheaper than the futex wake (a context switch per worker) every
/// region start would otherwise pay.
constexpr int kParkSpins = 2048;
constexpr int kDoneSpins = 4096;

/// The process-wide persistent worker pool behind host_parallel.
///
/// Handoff protocol: the caller — always team member 0 — resets the
/// shared HostTeam, publishes (body, errors, active width) under mu_,
/// bumps generation_, and runs its own member inline. Worker `slot` runs
/// as tid slot + 1: it spins briefly, then parks on its own condvar until
/// the generation moves with slot < active_, runs its member, and
/// decrements
/// unfinished_; the caller spins-then-parks on done_cv_ until unfinished_
/// reaches zero. That final acquire of unfinished_ == 0 orders every
/// worker's team/errors writes before the caller reads them (the
/// fetch_subs form one release sequence), so reset and rethrow race with
/// nothing.
///
/// A region owns the whole pool: host_parallel acquires busy_ first and
/// nested or concurrent regions that find it taken take the spawn path,
/// so the protocol never sees two regions at once. Workers beyond the
/// current region's width stay parked (their slot fails the slot <
/// active_ check) and teams can shrink and regrow freely between regions.
/// Each worker parks on its own condvar so a narrow region on a wide pool
/// wakes only the workers it uses — with one shared condvar, every
/// region's notify would context-switch each parked high slot just to
/// re-check its predicate, and launch latency would scale with the widest
/// team ever seen instead of the team being launched.
class TeamPool {
 public:
  static TeamPool& instance() {
    static TeamPool pool;
    return pool;
  }

  /// Claim exclusive use of the pool; pair with release(). Fails (without
  /// blocking) when another region is running on it.
  bool try_acquire() {
    return !busy_.exchange(true, std::memory_order_acquire);
  }

  void release() { busy_.store(false, std::memory_order_release); }

  /// Pre-spawn workers for teams of up to `num_threads`. Skipped when the
  /// pool is busy — the running region already paid for its workers.
  void warm(int num_threads) {
    if (!try_acquire()) {
      return;
    }
    ensure_workers(num_threads - 1);
    release();
  }

  /// Run one region. Caller must hold the pool via try_acquire().
  RunResult run_acquired(const ParallelConfig& config,
                         const std::function<void(TeamContext&)>& body) {
    const int num_threads = config.num_threads;
    ensure_workers(num_threads - 1);

    std::unique_ptr<TraceRecorder> recorder;
    if (config.record_trace) {
      recorder = std::make_unique<TraceRecorder>(num_threads,
                                                 TraceClock::HostSteady);
    }
    ObserverAttach observer_attach(config, recorder.get());
    PoolObserverAttach pool_attach(recorder.get());
    pooled_regions_.fetch_add(1, std::memory_order_relaxed);
    std::unique_ptr<RegionGovernor> governor = RegionGovernor::for_region(
        config.cancel_token, config.deadline_s, config.chaos, num_threads);
    if (governor != nullptr) {
      governor->abort_team = [this] { team_.barrier.abort(); };
    }
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(num_threads));

    const auto start = std::chrono::steady_clock::now();
    team_.reset(num_threads, recorder.get(), start, governor.get());
    if (num_threads == 1) {
      // The caller is the whole team; no handoff at all.
      run_member(team_, 0, body, errors);
    } else {
      {
        std::lock_guard lk(mu_);
        body_ = &body;
        errors_ = &errors;
        active_ = num_threads - 1;
        unfinished_.store(num_threads - 1, std::memory_order_relaxed);
        generation_.fetch_add(1, std::memory_order_release);
      }
      for (int slot = 0; slot < num_threads - 1; ++slot) {
        work_cvs_[static_cast<std::size_t>(slot)]->notify_one();
      }
      run_member(team_, 0, body, errors);
      wait_for_workers();
    }
    const auto end = std::chrono::steady_clock::now();
    // A cancelled (or failed) region leaves the pool reusable by
    // construction: every member has exited (unfinished_ drained above),
    // and the next region's reset() re-arms the aborted barrier and the
    // dirtied worksharing slots before anything runs.
    return finish_region(errors, start, end, recorder.get(), governor.get());
  }

  /// Pool-side fields of a PoolSnapshot (the live counters and the spawn
  /// fallback count come from elsewhere). Plain relaxed loads: each field
  /// is an independent monotonic counter or flag, and the snapshot is a
  /// dashboard read, not a synchronization point.
  void fill(PoolSnapshot& snap) const {
    snap.workers = worker_count_.load(std::memory_order_relaxed);
    snap.busy = busy_.load(std::memory_order_relaxed);
    snap.pooled_regions = pooled_regions_.load(std::memory_order_relaxed);
  }

  ~TeamPool() {
    {
      std::lock_guard lk(mu_);
      shutdown_.store(true, std::memory_order_release);
    }
    for (const auto& cv : work_cvs_) {
      cv->notify_one();
    }
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }

 private:
  TeamPool() = default;

  void ensure_workers(int count) {
    if (static_cast<int>(workers_.size()) >= count) {
      return;
    }
    {
      // Grow the condvar vector under mu_: already-running workers index
      // it under mu_ inside their wait, and push_back may reallocate.
      // The condvars themselves live behind unique_ptr, so their
      // addresses survive the reallocation.
      std::lock_guard lk(mu_);
      while (static_cast<int>(work_cvs_.size()) < count) {
        work_cvs_.push_back(std::make_unique<std::condition_variable>());
      }
    }
    while (static_cast<int>(workers_.size()) < count) {
      const int slot = static_cast<int>(workers_.size());
      workers_.emplace_back([this, slot] { worker_main(slot); });
      worker_count_.store(static_cast<int>(workers_.size()),
                          std::memory_order_relaxed);
    }
  }

  void worker_main(int slot) {
    std::uint64_t seen = 0;
    for (;;) {
      for (int spin = 0; spin < kParkSpins; ++spin) {
        if (generation_.load(std::memory_order_acquire) != seen ||
            shutdown_.load(std::memory_order_acquire)) {
          break;
        }
        std::this_thread::yield();
      }
      const std::function<void(TeamContext&)>* body = nullptr;
      std::vector<std::exception_ptr>* errors = nullptr;
      {
        std::unique_lock lk(mu_);
        work_cvs_[static_cast<std::size_t>(slot)]->wait(lk, [&] {
          return shutdown_.load(std::memory_order_relaxed) ||
                 (generation_.load(std::memory_order_relaxed) != seen &&
                  slot < active_);
        });
        if (shutdown_.load(std::memory_order_relaxed)) {
          return;
        }
        seen = generation_.load(std::memory_order_relaxed);
        body = body_;
        errors = errors_;
      }
      run_member(team_, slot + 1, *body, *errors);
      // The decrement must happen under mu_ or it could slip between a
      // sleeping caller's predicate check and its wait; the notify itself
      // happens after unlocking so the caller wakes straight through.
      bool last = false;
      {
        std::lock_guard lk(mu_);
        last = unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1;
      }
      if (last) {
        done_cv_.notify_one();
      }
    }
  }

  void wait_for_workers() {
    for (int spin = 0; spin < kDoneSpins; ++spin) {
      if (unfinished_.load(std::memory_order_acquire) == 0) {
        return;
      }
      std::this_thread::yield();
    }
    std::unique_lock lk(mu_);
    done_cv_.wait(lk, [&] {
      return unfinished_.load(std::memory_order_acquire) == 0;
    });
  }

  std::atomic<bool> busy_{false};
  HostTeam team_{1};
  std::atomic<std::uint64_t> pooled_regions_{0};
  /// Mirrors workers_.size(); workers_ itself grows outside mu_ (only the
  /// region holding the pool touches it), so snapshots read this instead.
  std::atomic<int> worker_count_{0};

  std::mutex mu_;
  // One park condvar per worker slot (stable addresses via unique_ptr);
  // region launch notifies exactly the slots it activates.
  std::vector<std::unique_ptr<std::condition_variable>> work_cvs_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;  // worker at slot s runs as tid s + 1
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<int> unfinished_{0};
  int active_ = 0;  // workers participating in the current region
  const std::function<void(TeamContext&)>* body_ = nullptr;
  std::vector<std::exception_ptr>* errors_ = nullptr;
};

}  // namespace

void warm_host_pool(int num_threads) {
  util::require(num_threads >= 1, "warm_host_pool: need at least one thread");
  TeamPool::instance().warm(num_threads);
}

PoolSnapshot pool_snapshot() {
  PoolSnapshot snap;
  TeamPool::instance().fill(snap);
  snap.spawned_regions = g_spawned_regions.load(std::memory_order_relaxed);
  snap.live = pool_observer().totals();
  return snap;
}

RunResult host_parallel(const ParallelConfig& config,
                        const std::function<void(TeamContext&)>& body) {
  util::require(config.num_threads >= 1,
                "host_parallel: need at least one thread");
  util::require(body != nullptr, "host_parallel: body must be callable");

  if (config.use_pool) {
    TeamPool& pool = TeamPool::instance();
    if (pool.try_acquire()) {
      struct Release {
        TeamPool& pool;
        ~Release() { pool.release(); }
      } release{pool};
      return pool.run_acquired(config, body);
    }
  }
  return host_parallel_spawn(config, body);
}

}  // namespace pblpar::rt
