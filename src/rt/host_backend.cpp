#include "rt/host_backend.hpp"

#include "rt/loops.hpp"

#include <array>
#include <chrono>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "rt/trace.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

AbortableBarrier::AbortableBarrier(int parties) : parties_(parties) {
  util::require(parties >= 1, "AbortableBarrier: need at least one party");
}

void AbortableBarrier::arrive_and_wait() {
  std::unique_lock lk(mu_);
  if (aborted_) {
    throw TeamAborted{};
  }
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lk, [&] { return generation_ != my_generation || aborted_; });
  // Abort wins over a concurrent release: without the plain re-check a
  // waiter whose generation was bumped in the same mutex epoch as abort()
  // would return normally and the abort would be lost until (unless) it
  // reached another barrier.
  if (aborted_) {
    throw TeamAborted{};
  }
}

void AbortableBarrier::abort() {
  std::lock_guard guard(mu_);
  aborted_ = true;
  cv_.notify_all();
}

namespace {

/// Worksharing bookkeeping shared by all members of a host team.
/// Loop counters and single-arrival flags are preallocated so claims are
/// lock-free; 256 worksharing constructs per region is far beyond any of
/// the course workloads.
constexpr int kMaxWorksharing = 256;

/// One thread's steal deque: its remaining chunk-index span per loop,
/// guarded by a per-deque mutex. Spans default to empty, so a thief that
/// scans a deque before its owner reached steal_install simply moves on —
/// the owner still drains everything it later installs.
struct StealDeque {
  std::mutex mu;
  std::array<StealSpan, kMaxWorksharing> spans;
};

struct HostTeam {
  explicit HostTeam(int num_threads)
      : num_threads(num_threads), barrier(num_threads),
        steal_deques(static_cast<std::size_t>(num_threads)) {
    for (auto& counter : loop_counters) {
      counter.store(0, std::memory_order_relaxed);
    }
    for (auto& flag : single_arrivals) {
      flag.store(0, std::memory_order_relaxed);
    }
  }

  int num_threads;
  AbortableBarrier barrier;
  std::mutex critical_mu;
  std::array<std::atomic<std::int64_t>, kMaxWorksharing> loop_counters;
  std::array<std::atomic<int>, kMaxWorksharing> single_arrivals;
  std::vector<StealDeque> steal_deques;  // indexed by tid
  std::atomic<bool> aborted{false};

  /// Observability (null / unset when tracing is off).
  TraceRecorder* tracer = nullptr;
  std::chrono::steady_clock::time_point trace_epoch;
};

class HostTeamContext final : public TeamContext {
 public:
  HostTeamContext(HostTeam& team, int tid) : team_(&team), tid_(tid) {}

  int thread_num() const override { return tid_; }
  int num_threads() const override { return team_->num_threads; }

  TraceRecorder* tracer() override { return team_->tracer; }

  double trace_now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         team_->trace_epoch)
        .count();
  }

  void barrier() override {
    if (team_->tracer == nullptr) {
      team_->barrier.arrive_and_wait();
      return;
    }
    const double arrive_s = trace_now();
    team_->barrier.arrive_and_wait();
    team_->tracer->record_barrier(tid_, arrive_s, trace_now());
  }

  void critical(const std::function<void()>& body) override {
    if (team_->tracer == nullptr) {
      std::lock_guard guard(team_->critical_mu);
      body();
      return;
    }
    const double request_s = trace_now();
    double acquire_s = 0.0;
    double release_s = 0.0;
    {
      std::lock_guard guard(team_->critical_mu);
      acquire_s = trace_now();
      body();
      release_s = trace_now();
    }
    team_->tracer->record_critical(tid_, request_s, acquire_s, release_s);
  }

  void single(const std::function<void()>& body) override {
    const int id = next_single_id_++;
    util::require(id < kMaxWorksharing,
                  "TeamContext::single: too many worksharing constructs");
    if (team_->single_arrivals[static_cast<std::size_t>(id)].fetch_add(1) ==
        0) {
      if (team_->tracer != nullptr) {
        team_->tracer->record_single_winner(tid_, id);
      }
      body();
    }
    barrier();
  }

  void compute(double ops, double mem_intensity) override {
    // Host execution is real work in real time; modelled cost is ignored.
    (void)ops;
    (void)mem_intensity;
  }

  std::pair<std::int64_t, std::int64_t> claim(
      int loop_id, std::int64_t total, const Schedule& schedule) override {
    util::require(loop_id >= 0 && loop_id < kMaxWorksharing,
                  "TeamContext::claim: too many worksharing loops");
    auto& counter = team_->loop_counters[static_cast<std::size_t>(loop_id)];
    std::int64_t current = counter.load(std::memory_order_relaxed);
    for (;;) {
      if (current >= total) {
        return {total, 0};
      }
      const std::int64_t size =
          chunk_size_for(schedule, total - current, team_->num_threads);
      if (counter.compare_exchange_weak(current, current + size,
                                        std::memory_order_acq_rel)) {
        return {current, size};
      }
    }
  }

  void steal_install(int loop_id, std::int64_t total,
                     const Schedule& schedule) override {
    util::require(loop_id >= 0 && loop_id < kMaxWorksharing,
                  "TeamContext::steal_install: too many worksharing loops");
    const std::int64_t chunk =
        steal_chunk_size(schedule, total, team_->num_threads);
    StealDeque& mine = team_->steal_deques[static_cast<std::size_t>(tid_)];
    std::lock_guard guard(mine.mu);
    mine.spans[static_cast<std::size_t>(loop_id)] =
        steal_initial_span(total, chunk, team_->num_threads, tid_);
  }

  StealClaim steal_next(int loop_id, std::int64_t total,
                        const Schedule& schedule) override {
    util::require(loop_id >= 0 && loop_id < kMaxWorksharing,
                  "TeamContext::steal_next: too many worksharing loops");
    const std::int64_t chunk =
        steal_chunk_size(schedule, total, team_->num_threads);
    // Own deque first: pop the lowest chunk index, an ascending walk of
    // our block (the LIFO end relative to how the block was dealt).
    {
      StealDeque& mine = team_->steal_deques[static_cast<std::size_t>(tid_)];
      std::lock_guard guard(mine.mu);
      StealSpan& span = mine.spans[static_cast<std::size_t>(loop_id)];
      if (!span.empty()) {
        return steal_claim_for(span.lo++, chunk, total, tid_);
      }
    }
    // Then scan peers round-robin starting at our right-hand neighbour,
    // taking from the FIFO end — the chunk the victim would reach last.
    for (int k = 1; k < team_->num_threads; ++k) {
      const int victim = (tid_ + k) % team_->num_threads;
      StealDeque& theirs =
          team_->steal_deques[static_cast<std::size_t>(victim)];
      std::lock_guard guard(theirs.mu);
      StealSpan& span = theirs.spans[static_cast<std::size_t>(loop_id)];
      if (!span.empty()) {
        return steal_claim_for(--span.hi, chunk, total, victim);
      }
    }
    return StealClaim{total, 0, tid_};
  }

 private:
  HostTeam* team_;
  int tid_;
  int next_single_id_ = 0;
};

}  // namespace

RunResult host_parallel(const ParallelConfig& config,
                        const std::function<void(TeamContext&)>& body) {
  const int num_threads = config.num_threads;
  util::require(num_threads >= 1, "host_parallel: need at least one thread");
  util::require(body != nullptr, "host_parallel: body must be callable");

  HostTeam team(num_threads);
  std::unique_ptr<TraceRecorder> recorder;
  if (config.record_trace) {
    recorder = std::make_unique<TraceRecorder>(num_threads,
                                               TraceClock::HostSteady);
    team.tracer = recorder.get();
  }

  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_threads));

  const auto start = std::chrono::steady_clock::now();
  team.trace_epoch = start;
  {
    std::vector<std::jthread> members;
    members.reserve(static_cast<std::size_t>(num_threads));
    for (int tid = 0; tid < num_threads; ++tid) {
      members.emplace_back([&team, &errors, &body, tid] {
        HostTeamContext ctx(team, tid);
        try {
          body(ctx);
        } catch (const TeamAborted&) {
          // Another member failed; we just unwound past its barriers.
        } catch (...) {
          errors[static_cast<std::size_t>(tid)] = std::current_exception();
          team.aborted.store(true);
          team.barrier.abort();
        }
      });
    }
  }  // jthreads join here
  const auto end = std::chrono::steady_clock::now();

  for (const auto& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }

  RunResult result;
  result.host_seconds = std::chrono::duration<double>(end - start).count();
  if (recorder != nullptr) {
    result.profile = std::make_shared<const RunProfile>(
        recorder->finish(result.host_seconds));
  }
  return result;
}

}  // namespace pblpar::rt
