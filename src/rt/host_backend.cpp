#include "rt/host_backend.hpp"

#include "rt/loops.hpp"

#include <array>
#include <chrono>
#include <exception>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace pblpar::rt {

AbortableBarrier::AbortableBarrier(int parties) : parties_(parties) {
  util::require(parties >= 1, "AbortableBarrier: need at least one party");
}

void AbortableBarrier::arrive_and_wait() {
  std::unique_lock lk(mu_);
  if (aborted_) {
    throw TeamAborted{};
  }
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lk, [&] { return generation_ != my_generation || aborted_; });
  if (aborted_ && generation_ == my_generation) {
    throw TeamAborted{};
  }
}

void AbortableBarrier::abort() {
  std::lock_guard guard(mu_);
  aborted_ = true;
  cv_.notify_all();
}

namespace {

/// Worksharing bookkeeping shared by all members of a host team.
/// Loop counters and single-arrival flags are preallocated so claims are
/// lock-free; 256 worksharing constructs per region is far beyond any of
/// the course workloads.
constexpr int kMaxWorksharing = 256;

struct HostTeam {
  explicit HostTeam(int num_threads)
      : num_threads(num_threads), barrier(num_threads) {
    for (auto& counter : loop_counters) {
      counter.store(0, std::memory_order_relaxed);
    }
    for (auto& flag : single_arrivals) {
      flag.store(0, std::memory_order_relaxed);
    }
  }

  int num_threads;
  AbortableBarrier barrier;
  std::mutex critical_mu;
  std::array<std::atomic<std::int64_t>, kMaxWorksharing> loop_counters;
  std::array<std::atomic<int>, kMaxWorksharing> single_arrivals;
  std::atomic<bool> aborted{false};
};

class HostTeamContext final : public TeamContext {
 public:
  HostTeamContext(HostTeam& team, int tid) : team_(&team), tid_(tid) {}

  int thread_num() const override { return tid_; }
  int num_threads() const override { return team_->num_threads; }

  void barrier() override { team_->barrier.arrive_and_wait(); }

  void critical(const std::function<void()>& body) override {
    std::lock_guard guard(team_->critical_mu);
    body();
  }

  void single(const std::function<void()>& body) override {
    const int id = next_single_id_++;
    util::require(id < kMaxWorksharing,
                  "TeamContext::single: too many worksharing constructs");
    if (team_->single_arrivals[static_cast<std::size_t>(id)].fetch_add(1) ==
        0) {
      body();
    }
    barrier();
  }

  void compute(double ops, double mem_intensity) override {
    // Host execution is real work in real time; modelled cost is ignored.
    (void)ops;
    (void)mem_intensity;
  }

  std::pair<std::int64_t, std::int64_t> claim(
      int loop_id, std::int64_t total, const Schedule& schedule) override {
    util::require(loop_id >= 0 && loop_id < kMaxWorksharing,
                  "TeamContext::claim: too many worksharing loops");
    auto& counter = team_->loop_counters[static_cast<std::size_t>(loop_id)];
    std::int64_t current = counter.load(std::memory_order_relaxed);
    for (;;) {
      if (current >= total) {
        return {total, 0};
      }
      const std::int64_t size =
          chunk_size_for(schedule, total - current, team_->num_threads);
      if (counter.compare_exchange_weak(current, current + size,
                                        std::memory_order_acq_rel)) {
        return {current, size};
      }
    }
  }

 private:
  HostTeam* team_;
  int tid_;
  int next_single_id_ = 0;
};

}  // namespace

RunResult host_parallel(int num_threads,
                        const std::function<void(TeamContext&)>& body) {
  util::require(num_threads >= 1, "host_parallel: need at least one thread");
  util::require(body != nullptr, "host_parallel: body must be callable");

  HostTeam team(num_threads);
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_threads));

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> members;
    members.reserve(static_cast<std::size_t>(num_threads));
    for (int tid = 0; tid < num_threads; ++tid) {
      members.emplace_back([&team, &errors, &body, tid] {
        HostTeamContext ctx(team, tid);
        try {
          body(ctx);
        } catch (const TeamAborted&) {
          // Another member failed; we just unwound past its barriers.
        } catch (...) {
          errors[static_cast<std::size_t>(tid)] = std::current_exception();
          team.aborted.store(true);
          team.barrier.abort();
        }
      });
    }
  }  // jthreads join here
  const auto end = std::chrono::steady_clock::now();

  for (const auto& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }

  RunResult result;
  result.host_seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace pblpar::rt
