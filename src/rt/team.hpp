#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "rt/schedule.hpp"

namespace pblpar::rt {

class TraceRecorder;
class RegionGovernor;

/// Alignment used to keep per-thread mutable state (steal deques, trace
/// buffers) on distinct cache lines. 64 bytes covers every target the
/// course cares about (Cortex-A53/A72 and x86-64 all use 64-byte lines);
/// std::hardware_destructive_interference_size is deliberately not used —
/// it varies per compiler flag set and would make layouts (and therefore
/// false-sharing behaviour) differ between the default and TSan builds.
inline constexpr std::size_t kCacheLineBytes = 64;

/// One chunk of a Schedule::steal loop handed to a team member by
/// TeamContext::steal_next. `begin` is loop-relative (callers add the
/// range offset); `victim` is the deque the chunk came from, equal to the
/// claimant's own thread_num() for local pops.
struct StealClaim {
  std::int64_t begin = 0;
  std::int64_t count = 0;  // 0 = the loop is fully drained
  int victim = -1;
};

/// The view a team member has of its parallel region — the TeachMP
/// equivalent of OpenMP's implicit thread context.
///
/// A TeamContext is only valid inside the body it was passed to. All team
/// members execute the same body (SPMD); worksharing constructs
/// (for_loop, single) must be encountered by every member in the same
/// order, as in OpenMP.
class TeamContext {
 public:
  virtual ~TeamContext() = default;

  /// This member's id in [0, num_threads()), 0 being the master.
  virtual int thread_num() const = 0;
  virtual int num_threads() const = 0;

  /// Collective: wait until every team member arrives.
  virtual void barrier() = 0;

  /// Run `body` mutually exclusively with other members' critical sections.
  virtual void critical(const std::function<void()>& body) = 0;

  /// Worksharing single: exactly one member (the first to arrive) runs
  /// `body`; an implicit barrier follows, as in OpenMP without nowait.
  virtual void single(const std::function<void()>& body) = 0;

  /// Only the master (thread 0) runs `body`; no implied barrier.
  void master(const std::function<void()>& body) {
    if (thread_num() == 0) {
      body();
    }
  }

  /// Charge modelled work to this member (no-op on the host backend).
  virtual void compute(double ops, double mem_intensity = 0.0) = 0;

  /// Claim the next chunk of loop `loop_id` over `total` iterations under
  /// `schedule`. Returns {start, count}; count == 0 means the loop is
  /// exhausted. Used by dynamic/guided scheduling.
  virtual std::pair<std::int64_t, std::int64_t> claim(
      int loop_id, std::int64_t total, const Schedule& schedule) = 0;

  /// Install this member's initial block of chunks for a Schedule::steal
  /// loop. Called once per member at loop entry, before any steal_next;
  /// not a collective (no barrier), so a fast peer can scan this deque
  /// before it is installed and simply find it empty — the owner still
  /// executes (or donates) every chunk it installs, so each iteration
  /// runs exactly once either way.
  virtual void steal_install(int loop_id, std::int64_t total,
                             const Schedule& schedule) {
    (void)loop_id;
    (void)total;
    (void)schedule;
    util::require(false,
                  "TeamContext::steal_install: this backend does not "
                  "implement Schedule::steal");
  }

  /// Claim the next chunk of a Schedule::steal loop: pop from this
  /// member's own deque, or steal from a peer once it is empty. A count
  /// of 0 means no deque holds work any more and the member should leave
  /// for the loop-end barrier.
  virtual StealClaim steal_next(int loop_id, std::int64_t total,
                                const Schedule& schedule) {
    (void)loop_id;
    (void)total;
    (void)schedule;
    util::require(false,
                  "TeamContext::steal_next: this backend does not "
                  "implement Schedule::steal");
    return {};
  }

  /// The shared claim counter of loop `loop_id`, or nullptr when this
  /// backend has no directly usable counter. When non-null, a fixed-size
  /// claim (dynamic scheduling) may be performed as one relaxed fetch_add
  /// on it — the loop driver inlines that instead of paying a virtual
  /// claim() per chunk. Backends that charge modelled time per claim
  /// (Sim) return nullptr so every claim still flows through claim().
  virtual std::atomic<std::int64_t>* claim_counter(int loop_id) {
    (void)loop_id;
    return nullptr;
  }

  /// Per-member worksharing-loop sequence number. Every member encounters
  /// loops in the same order, so equal ids refer to the same loop.
  int next_loop_id() { return next_loop_id_++; }

  /// How many loop ids this member has drawn so far. A pooled backend
  /// uses the team-wide maximum to re-arm only the worksharing slots a
  /// region actually touched instead of the whole preallocated table.
  int loop_ids_issued() const { return next_loop_id_; }

  /// Cancellation/chaos governor of this region, or nullptr when neither
  /// a CancelToken, a deadline nor a ChaosPlan is armed (the common
  /// case). Loop drivers poll it at every chunk-claim boundary when set
  /// and skip all polling when null, so uncancellable regions pay one
  /// null check per loop, not per chunk.
  virtual RegionGovernor* governor() { return nullptr; }

  /// Stall this member for `seconds` on the backend's clock — the chaos
  /// plan's delay injection. Host yields in real time; Sim charges
  /// virtual time. No-op on backends without a notion of stalling.
  virtual void inject_delay(double seconds) { (void)seconds; }

  /// Trace collector of this region, or nullptr when tracing is off.
  /// Worksharing constructs record chunk/barrier/critical events into it.
  virtual TraceRecorder* tracer() { return nullptr; }

  /// Seconds since region start on the backend's trace clock (host steady
  /// clock or sim virtual time). Only meaningful while tracing.
  virtual double trace_now() const { return 0.0; }

 private:
  int next_loop_id_ = 0;
};

}  // namespace pblpar::rt
