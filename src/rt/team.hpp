#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "rt/schedule.hpp"

namespace pblpar::rt {

class TraceRecorder;

/// The view a team member has of its parallel region — the TeachMP
/// equivalent of OpenMP's implicit thread context.
///
/// A TeamContext is only valid inside the body it was passed to. All team
/// members execute the same body (SPMD); worksharing constructs
/// (for_loop, single) must be encountered by every member in the same
/// order, as in OpenMP.
class TeamContext {
 public:
  virtual ~TeamContext() = default;

  /// This member's id in [0, num_threads()), 0 being the master.
  virtual int thread_num() const = 0;
  virtual int num_threads() const = 0;

  /// Collective: wait until every team member arrives.
  virtual void barrier() = 0;

  /// Run `body` mutually exclusively with other members' critical sections.
  virtual void critical(const std::function<void()>& body) = 0;

  /// Worksharing single: exactly one member (the first to arrive) runs
  /// `body`; an implicit barrier follows, as in OpenMP without nowait.
  virtual void single(const std::function<void()>& body) = 0;

  /// Only the master (thread 0) runs `body`; no implied barrier.
  void master(const std::function<void()>& body) {
    if (thread_num() == 0) {
      body();
    }
  }

  /// Charge modelled work to this member (no-op on the host backend).
  virtual void compute(double ops, double mem_intensity = 0.0) = 0;

  /// Claim the next chunk of loop `loop_id` over `total` iterations under
  /// `schedule`. Returns {start, count}; count == 0 means the loop is
  /// exhausted. Used by dynamic/guided scheduling.
  virtual std::pair<std::int64_t, std::int64_t> claim(
      int loop_id, std::int64_t total, const Schedule& schedule) = 0;

  /// Per-member worksharing-loop sequence number. Every member encounters
  /// loops in the same order, so equal ids refer to the same loop.
  int next_loop_id() { return next_loop_id_++; }

  /// Trace collector of this region, or nullptr when tracing is off.
  /// Worksharing constructs record chunk/barrier/critical events into it.
  virtual TraceRecorder* tracer() { return nullptr; }

  /// Seconds since region start on the backend's trace clock (host steady
  /// clock or sim virtual time). Only meaningful while tracing.
  virtual double trace_now() const { return 0.0; }

 private:
  int next_loop_id_ = 0;
};

}  // namespace pblpar::rt
