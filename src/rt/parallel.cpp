#include "rt/parallel.hpp"

#include <cmath>

#include "rt/host_backend.hpp"
#include "rt/sim_backend.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

RunResult parallel(const ParallelConfig& config,
                   const std::function<void(TeamContext&)>& body) {
  util::require(config.num_threads >= 1,
                "parallel: config.num_threads must be >= 1");
  // ParallelConfig::deadline() validates, but deadline_s is a plain
  // field — a NaN or negative written directly would silently disarm or
  // misfire the governor's clock checks. Reject it loudly here instead.
  util::require(std::isfinite(config.deadline_s) && config.deadline_s >= 0.0,
                "parallel: config.deadline_s must be finite and >= 0 "
                "(0 = no deadline)");
  switch (config.backend) {
    case BackendKind::Host:
      return host_parallel(config, body);
    case BackendKind::Sim: {
      if (config.external_machine != nullptr) {
        return sim_parallel(*config.external_machine, config, body);
      }
      sim::Machine machine(config.machine);
      return sim_parallel(machine, config, body);
    }
  }
  throw util::PreconditionError("parallel: unknown backend");
}

RunResult parallel_for(const ParallelConfig& config, Range range,
                       Schedule schedule,
                       const std::function<void(std::int64_t)>& body,
                       const CostModel& cost) {
  return parallel(config, [&](TeamContext& tc) {
    for_loop(tc, range, schedule, body, cost);
  });
}

void warm_up(const ParallelConfig& config) {
  if (config.backend == BackendKind::Host && config.use_pool) {
    warm_host_pool(config.num_threads);
  }
}

}  // namespace pblpar::rt
