#pragma once

#include <functional>

#include "rt/config.hpp"
#include "rt/team.hpp"
#include "sim/machine.hpp"

namespace pblpar::rt {

/// Execute `body` as a team of `config.num_threads` virtual threads on
/// the given simulated machine (thread 0 is the machine's root thread,
/// mirroring OpenMP's master). Returns the machine's execution report.
/// With config.record_trace set, attaches a RunProfile stamped in virtual
/// time — the same schema the host backend emits, so real and modelled
/// runs diff cleanly.
RunResult sim_parallel(sim::Machine& machine, const ParallelConfig& config,
                       const std::function<void(TeamContext&)>& body);

}  // namespace pblpar::rt
