#pragma once

#include <functional>

#include "rt/config.hpp"
#include "rt/team.hpp"
#include "sim/machine.hpp"

namespace pblpar::rt {

/// Execute `body` as a team of `num_threads` virtual threads on the given
/// simulated machine (thread 0 is the machine's root thread, mirroring
/// OpenMP's master). Returns the machine's execution report.
RunResult sim_parallel(sim::Machine& machine, int num_threads,
                       const std::function<void(TeamContext&)>& body);

}  // namespace pblpar::rt
