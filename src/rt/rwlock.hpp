#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace pblpar::rt {

/// Hand-made writer-preferring reader-writer lock built on a single
/// 32-bit atomic word: the low 30 bits count active readers, bit 30 is
/// "a writer is waiting", bit 31 is "a writer holds the lock".
///
/// Readers spin (with yield) while a writer holds or is waiting for the
/// lock — the waiting bit is what makes writers preferred, so a stream
/// of observers sampling trace stats can never starve the region's own
/// bookkeeping writes. Writers set the waiting bit, then spin until the
/// reader count drains to zero and CAS the word to "held".
///
/// Not reentrant: a thread that holds the lock in either mode must not
/// acquire it again. Spinning (rather than parking on a futex/condvar)
/// is the right trade here: critical sections are a few loads/stores
/// long, and observers tolerate microsecond waits.
class RwLock {
 public:
  void lock_shared() {
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & (kWriter | kWriterWaiting)) == 0) {
        if (state_.compare_exchange_weak(s, s + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;  // CAS raced; re-read without yielding
      }
      std::this_thread::yield();
    }
  }

  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

  void lock() {
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & ~kWriterWaiting) == 0) {
        // No writer held and no readers: try to take it. This also
        // clears our waiting bit (other queued writers will re-set it).
        if (state_.compare_exchange_weak(s, kWriter,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if ((s & kWriterWaiting) == 0) {
        state_.fetch_or(kWriterWaiting, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  }

  void unlock() { state_.fetch_and(~kWriter, std::memory_order_release); }

 private:
  static constexpr std::uint32_t kWriter = 1u << 31;
  static constexpr std::uint32_t kWriterWaiting = 1u << 30;

  std::atomic<std::uint32_t> state_{0};
};

/// RAII shared (reader) guard for RwLock.
class ReadLock {
 public:
  explicit ReadLock(RwLock& lock) : lock_(lock) { lock_.lock_shared(); }
  ~ReadLock() { lock_.unlock_shared(); }
  ReadLock(const ReadLock&) = delete;
  ReadLock& operator=(const ReadLock&) = delete;

 private:
  RwLock& lock_;
};

/// RAII exclusive (writer) guard for RwLock.
class WriteLock {
 public:
  explicit WriteLock(RwLock& lock) : lock_(lock) { lock_.lock(); }
  ~WriteLock() { lock_.unlock(); }
  WriteLock(const WriteLock&) = delete;
  WriteLock& operator=(const WriteLock&) = delete;

 private:
  RwLock& lock_;
};

}  // namespace pblpar::rt
