#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>

#include "rt/cancel.hpp"
#include "rt/loops.hpp"
#include "rt/schedule.hpp"
#include "rt/team.hpp"
#include "rt/trace.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

namespace detail {

/// Run one chunk of iterations, charging the modelled cost afterwards.
/// `body` is a deduced callable, so the per-iteration call inlines — this
/// is the devirtualized hot path; the std::function-based for_loop wraps
/// it with one layer of type erasure for ABI-stable call sites.
template <class Body>
inline void run_chunk(TeamContext& tc, std::int64_t begin, std::int64_t end,
                      Body& body, const CostModel& cost) {
  for (std::int64_t i = begin; i < end; ++i) {
    body(i);
  }
  if (!cost.empty()) {
    tc.compute(cost.total_ops(begin, end), cost.mem_intensity);
  }
}

/// run_chunk plus a trace record when tracing is on. The chunk's span on
/// the trace clock covers the body and (on Sim) the charged cost, so host
/// and sim timelines mean the same thing.
template <class Body>
inline void run_chunk_traced(TeamContext& tc, TraceRecorder* tracer,
                             int loop_id, std::int64_t begin,
                             std::int64_t end, Body& body,
                             const CostModel& cost) {
  if (tracer == nullptr) {
    run_chunk(tc, begin, end, body, cost);
    return;
  }
  const std::uint64_t claim_order = tracer->next_claim_order();
  const double start_s = tc.trace_now();
  run_chunk(tc, begin, end, body, cost);
  tracer->record_chunk(tc.thread_num(), loop_id, begin, end, claim_order,
                       start_s, tc.trace_now());
}

}  // namespace detail

/// Worksharing loop over `range` (OpenMP's `#pragma omp for`), templated
/// on the body so the per-iteration call inlines instead of going through
/// std::function — use this from hot code; for_loop is the type-erased
/// wrapper with identical semantics.
///
/// Must be encountered by every member of the team. Iterations are
/// distributed according to `schedule`; `body` receives global iteration
/// indices. `cost` is charged to the simulator per chunk (ignored on the
/// host backend). Ends with an implicit team barrier unless
/// `barrier_at_end` is false (OpenMP's nowait).
template <class Body>
void for_each(TeamContext& tc, Range range, Schedule schedule, Body&& body,
              const CostModel& cost = {}, bool barrier_at_end = true) {
  const std::int64_t total = range.size();
  const int loop_id = tc.next_loop_id();
  const int num_threads = tc.num_threads();
  const int tid = tc.thread_num();
  TraceRecorder* const tracer = tc.tracer();
  if (tracer != nullptr) {
    tracer->register_loop(loop_id, schedule.to_string(), total);
  }
  // Cancellation/chaos polling happens at chunk-claim boundaries only:
  // a claimed chunk always runs to completion, which is what makes the
  // per-thread completed-iteration counts in rt::Cancelled exact. When
  // no governor is armed (the overwhelmingly common case) `poll` and
  // `completed` compile down to a null check per chunk.
  RegionGovernor* const governor = tc.governor();
  const auto poll = [&] {
    if (governor != nullptr) {
      governor->at_claim(tc, tid);
    }
  };
  const auto completed = [&](std::int64_t count) {
    if (governor != nullptr) {
      governor->add_completed(tid, count);
    }
  };

  if (schedule.kind == Schedule::Kind::Static) {
    if (schedule.chunk <= 0) {
      // One contiguous block per thread, remainder spread over the first
      // threads (OpenMP's default static split).
      const std::int64_t base = total / num_threads;
      const std::int64_t extra = total % num_threads;
      const std::int64_t mine = base + (tid < extra ? 1 : 0);
      const std::int64_t start =
          range.begin + tid * base + std::min<std::int64_t>(tid, extra);
      if (mine > 0) {
        poll();
        detail::run_chunk_traced(tc, tracer, loop_id, start, start + mine,
                                 body, cost);
        completed(mine);
      }
    } else {
      // Round-robin chunks of the given size. The chunk is clamped to the
      // loop length (a bigger chunk cannot hand out more work anyway) so
      // the stride arithmetic below stays inside int64.
      const std::int64_t chunk =
          std::min<std::int64_t>(schedule.chunk, total);
      util::require(
          chunk <= std::numeric_limits<std::int64_t>::max() / num_threads,
          "for_each: static chunk * num_threads overflows int64");
      const std::int64_t stride = chunk * num_threads;
      std::int64_t chunk_start = chunk * tid;
      while (chunk_start < total) {
        const std::int64_t chunk_end =
            chunk < total - chunk_start ? chunk_start + chunk : total;
        poll();
        detail::run_chunk_traced(tc, tracer, loop_id,
                                 range.begin + chunk_start,
                                 range.begin + chunk_end, body, cost);
        completed(chunk_end - chunk_start);
        if (stride > total - chunk_start) {
          break;  // next round-robin turn would overflow / pass the end
        }
        chunk_start += stride;
      }
    }
  } else if (schedule.kind == Schedule::Kind::Steal) {
    // Work stealing: install our block of chunks, then drain — own deque
    // first, peers' deques once ours is empty. A migrated chunk gets a
    // steal event carrying the same claim order as its chunk event, so
    // timelines can link the theft to the execution span.
    tc.steal_install(loop_id, total, schedule);
    for (;;) {
      poll();
      const StealClaim claim = tc.steal_next(loop_id, total, schedule);
      if (claim.count == 0) {
        break;
      }
      const std::int64_t begin = range.begin + claim.begin;
      const std::int64_t end = begin + claim.count;
      if (tracer == nullptr) {
        detail::run_chunk(tc, begin, end, body, cost);
      } else {
        const std::uint64_t claim_order = tracer->next_claim_order();
        const double start_s = tc.trace_now();
        if (claim.victim != tid) {
          tracer->record_steal(tid, loop_id, claim.victim, begin, end,
                               claim_order, start_s);
        }
        detail::run_chunk(tc, begin, end, body, cost);
        tracer->record_chunk(tid, loop_id, begin, end, claim_order, start_s,
                             tc.trace_now());
      }
      completed(claim.count);
    }
  } else {
    // Dynamic chunks have a fixed size, so when the backend exposes its
    // shared counter (host), every claim is one inlined relaxed fetch_add
    // instead of a virtual call per chunk — at chunk 1 that is the
    // difference between dynamic scheduling costing a few ns per
    // iteration and costing a function call per iteration. Guided chunk
    // sizes depend on the remaining work, and Sim charges virtual time
    // per claim, so those stay on the claim() virtual.
    std::atomic<std::int64_t>* const counter =
        schedule.kind == Schedule::Kind::Dynamic ? tc.claim_counter(loop_id)
                                                 : nullptr;
    if (counter != nullptr) {
      const std::int64_t grab = fixed_claim_size(schedule, total);
      if (num_threads == 1) {
        // Sole claimant: a one-member team owns the whole loop, so no
        // atomic RMW per chunk — the serialized-team case every sweep
        // uses as its t=1 baseline should measure the body, not
        // lock-prefixed adds nobody races. When chunk granularity is
        // unobservable (no tracer recording per-chunk events, no cost
        // model charged per chunk, no governor polling per chunk) the
        // loop collapses to one chunk; otherwise the identical chunk
        // stream is walked serially.
        if (tracer == nullptr && cost.empty() && governor == nullptr) {
          detail::run_chunk(tc, range.begin, range.begin + total, body,
                            cost);
        } else {
          for (std::int64_t start = 0; start < total; start += grab) {
            const std::int64_t end =
                grab < total - start ? start + grab : total;
            poll();
            detail::run_chunk_traced(tc, tracer, loop_id,
                                     range.begin + start, range.begin + end,
                                     body, cost);
            completed(end - start);
          }
        }
      } else {
        for (;;) {
          // Poll before the claim so a cancelled member never consumes a
          // chunk index it will not run.
          poll();
          const std::int64_t start =
              counter->fetch_add(grab, std::memory_order_relaxed);
          if (start >= total) {
            break;
          }
          const std::int64_t end =
              grab < total - start ? start + grab : total;
          detail::run_chunk_traced(tc, tracer, loop_id, range.begin + start,
                                   range.begin + end, body, cost);
          completed(end - start);
        }
      }
    } else {
      for (;;) {
        poll();
        const auto [start, count] = tc.claim(loop_id, total, schedule);
        if (count == 0) {
          break;
        }
        detail::run_chunk_traced(tc, tracer, loop_id, range.begin + start,
                                 range.begin + start + count, body, cost);
        completed(count);
      }
    }
  }

  if (barrier_at_end) {
    tc.barrier();
  }
}

}  // namespace pblpar::rt
