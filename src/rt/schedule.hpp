#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/error.hpp"

namespace pblpar::rt {

/// Half-open iteration range [begin, end).
struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  std::int64_t size() const { return end > begin ? end - begin : 0; }

  static Range upto(std::int64_t n) { return Range{0, n}; }
};

/// Loop schedule, mirroring OpenMP's schedule(static|dynamic|guided, chunk)
/// plus a work-stealing schedule the course runtime adds on top.
struct Schedule {
  enum class Kind { Static, Dynamic, Guided, Steal };

  Kind kind = Kind::Static;

  /// Chunk size. For Static, 0 means one contiguous block per thread;
  /// otherwise chunks are dealt round-robin. For Dynamic it is the grab
  /// size (default 1). For Guided it is the minimum chunk (default 1).
  /// For Steal it is the deque chunk size; 0 (the default) auto-sizes to
  /// a handful of chunks per thread (see steal_chunk_size).
  std::int64_t chunk = 0;

  static Schedule static_block() { return {Kind::Static, 0}; }
  static Schedule static_chunk(std::int64_t chunk) {
    util::require(chunk >= 1, "Schedule::static_chunk: chunk must be >= 1");
    return {Kind::Static, chunk};
  }
  static Schedule dynamic(std::int64_t chunk = 1) {
    util::require(chunk >= 1, "Schedule::dynamic: chunk must be >= 1");
    return {Kind::Dynamic, chunk};
  }
  static Schedule guided(std::int64_t min_chunk = 1) {
    util::require(min_chunk >= 1, "Schedule::guided: min chunk must be >= 1");
    return {Kind::Guided, min_chunk};
  }

  /// Work stealing: iterations are pre-split into chunks and dealt out as
  /// one contiguous block of chunks per thread, held in a per-thread
  /// deque. Owners pop from their own deque (LIFO end, walking their
  /// block in ascending order); an idle thread scans its peers and steals
  /// a chunk from the opposite (FIFO) end of the first non-empty deque it
  /// finds. No shared counter: claims are per-deque, so uncontended pops
  /// stay cheap and only migration pays for synchronization. `chunk` 0
  /// (the default) auto-sizes the chunk so every thread starts with a
  /// handful of stealable chunks.
  static Schedule steal(std::int64_t chunk = 0) {
    util::require(chunk >= 0, "Schedule::steal: chunk must be >= 0 (0 = auto)");
    return {Kind::Steal, chunk};
  }

  std::string to_string() const;
};

/// Modelled cost of loop iterations, used by the simulator backend to
/// charge virtual time (ignored by the host backend, where work is real).
struct CostModel {
  /// Constant abstract ops per iteration (used when ops_fn is empty).
  double ops_per_iteration = 0.0;

  /// Per-iteration cost function, for imbalanced loops.
  std::function<double(std::int64_t)> ops_fn;

  /// Memory-boundedness of the work in [0, 1]; scales the simulated
  /// shared-memory contention penalty.
  double mem_intensity = 0.0;

  bool empty() const { return ops_per_iteration <= 0.0 && !ops_fn; }

  double ops_for(std::int64_t i) const {
    return ops_fn ? ops_fn(i) : ops_per_iteration;
  }

  /// Total modelled ops over global iteration indices [begin, end).
  double total_ops(std::int64_t begin, std::int64_t end) const {
    if (!ops_fn) {
      return ops_per_iteration * static_cast<double>(end - begin);
    }
    double total = 0.0;
    for (std::int64_t i = begin; i < end; ++i) {
      total += ops_fn(i);
    }
    return total;
  }

  static CostModel uniform(double ops, double mem_intensity = 0.0) {
    CostModel cost;
    cost.ops_per_iteration = ops;
    cost.mem_intensity = mem_intensity;
    return cost;
  }
};

}  // namespace pblpar::rt
