#include "rt/sim_backend.hpp"

#include "rt/loops.hpp"

#include <chrono>
#include <memory>
#include <vector>

#include "rt/cancel.hpp"
#include "rt/trace.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

namespace {

/// Worksharing bookkeeping shared by the members of a simulated team.
/// Plain (non-atomic) state is safe here: the simulator serializes real
/// code; virtual-time ordering of claims is enforced by claim_mutex.
struct SimTeam {
  int num_threads = 0;
  sim::BarrierHandle barrier;
  sim::MutexHandle critical_mutex;
  sim::MutexHandle claim_mutex;
  std::vector<std::int64_t> loop_counters;
  std::vector<int> single_arrivals;

  /// Schedule::steal state: steal_spans[tid][loop_id] is tid's remaining
  /// chunk-index span, guarded by steal_mutexes[tid] so local pops by
  /// different owners do not serialize against each other in virtual
  /// time. The machine's deterministic scheduler makes steal placement
  /// replay bit-for-bit for a given machine seed.
  std::vector<std::vector<StealSpan>> steal_spans;
  std::vector<sim::MutexHandle> steal_mutexes;

  /// Observability (null when tracing is off). Timestamps are virtual
  /// time; Machine::run starts each run at t = 0.
  TraceRecorder* tracer = nullptr;

  /// Cancellation/chaos governor (null when neither is armed).
  RegionGovernor* governor = nullptr;
};

class SimTeamContext final : public TeamContext {
 public:
  SimTeamContext(SimTeam& team, sim::Context& ctx, int tid)
      : team_(&team), ctx_(&ctx), tid_(tid) {}

  int thread_num() const override { return tid_; }
  int num_threads() const override { return team_->num_threads; }

  TraceRecorder* tracer() override { return team_->tracer; }

  RegionGovernor* governor() override { return team_->governor; }

  void inject_delay(double seconds) override {
    // A chaos delay on the Sim backend is just charged virtual time, so
    // injected schedules replay bit-for-bit.
    ctx_->compute_us(seconds * 1e6);
  }

  double trace_now() const override { return ctx_->now(); }

  void barrier() override {
    if (team_->tracer == nullptr) {
      ctx_->barrier(team_->barrier);
      return;
    }
    const double arrive_s = ctx_->now();
    ctx_->barrier(team_->barrier);
    team_->tracer->record_barrier(tid_, arrive_s, ctx_->now());
  }

  void critical(const std::function<void()>& body) override {
    if (team_->tracer == nullptr) {
      sim::ScopedLock lock(*ctx_, team_->critical_mutex);
      body();
      return;
    }
    const double request_s = ctx_->now();
    double acquire_s = 0.0;
    double release_s = 0.0;
    {
      sim::ScopedLock lock(*ctx_, team_->critical_mutex);
      acquire_s = ctx_->now();
      body();
      release_s = ctx_->now();
    }
    team_->tracer->record_critical(tid_, request_s, acquire_s, release_s);
  }

  void single(const std::function<void()>& body) override {
    const int id = next_single_id_++;
    bool mine = false;
    {
      sim::ScopedLock lock(*ctx_, team_->claim_mutex);
      auto& arrivals = team_->single_arrivals;
      if (static_cast<std::size_t>(id) >= arrivals.size()) {
        arrivals.resize(static_cast<std::size_t>(id) + 1, 0);
      }
      mine = arrivals[static_cast<std::size_t>(id)]++ == 0;
    }
    if (mine) {
      if (team_->tracer != nullptr) {
        team_->tracer->record_single_winner(tid_, id);
      }
      body();
    }
    barrier();
  }

  void compute(double ops, double mem_intensity) override {
    ctx_->compute(ops, mem_intensity);
  }

  std::pair<std::int64_t, std::int64_t> claim(
      int loop_id, std::int64_t total, const Schedule& schedule) override {
    sim::ScopedLock lock(*ctx_, team_->claim_mutex);
    // The shared-counter update itself costs a trip through the work
    // queue; charge it while holding the lock so claims serialize in
    // virtual time exactly like a contended OpenMP dynamic schedule.
    ctx_->compute_us(ctx_->spec().sched_chunk_cost_us);

    auto& counters = team_->loop_counters;
    if (static_cast<std::size_t>(loop_id) >= counters.size()) {
      counters.resize(static_cast<std::size_t>(loop_id) + 1, 0);
    }
    std::int64_t& counter = counters[static_cast<std::size_t>(loop_id)];
    if (counter >= total) {
      return {total, 0};
    }
    const std::int64_t size =
        chunk_size_for(schedule, total - counter, team_->num_threads);
    const std::int64_t start = counter;
    counter += size;
    return {start, size};
  }

  void steal_install(int loop_id, std::int64_t total,
                     const Schedule& schedule) override {
    const std::int64_t chunk =
        steal_chunk_size(schedule, total, team_->num_threads);
    sim::ScopedLock lock(
        *ctx_, team_->steal_mutexes[static_cast<std::size_t>(tid_)]);
    // Installing touches only our own deque: charge a quarter of the
    // shared-queue claim cost (a local push, not a contended counter).
    ctx_->compute_us(0.25 * ctx_->spec().sched_chunk_cost_us);
    auto& spans = team_->steal_spans[static_cast<std::size_t>(tid_)];
    if (spans.size() <= static_cast<std::size_t>(loop_id)) {
      spans.resize(static_cast<std::size_t>(loop_id) + 1);
    }
    spans[static_cast<std::size_t>(loop_id)] =
        steal_initial_span(total, chunk, team_->num_threads, tid_);
  }

  StealClaim steal_next(int loop_id, std::int64_t total,
                        const Schedule& schedule) override {
    const std::int64_t chunk =
        steal_chunk_size(schedule, total, team_->num_threads);
    {
      sim::ScopedLock lock(
          *ctx_, team_->steal_mutexes[static_cast<std::size_t>(tid_)]);
      ctx_->compute_us(0.25 * ctx_->spec().sched_chunk_cost_us);
      auto& spans = team_->steal_spans[static_cast<std::size_t>(tid_)];
      if (spans.size() > static_cast<std::size_t>(loop_id)) {
        StealSpan& span = spans[static_cast<std::size_t>(loop_id)];
        if (!span.empty()) {
          return steal_claim_for(span.lo++, chunk, total, tid_);
        }
      }
    }
    // Probe peers round-robin; a remote probe pays the full claim cost
    // (cache-line transfer of the victim's deque) whether or not it
    // finds work, so stealing is modelled as dearer than local pops.
    for (int k = 1; k < team_->num_threads; ++k) {
      const int victim = (tid_ + k) % team_->num_threads;
      sim::ScopedLock lock(
          *ctx_, team_->steal_mutexes[static_cast<std::size_t>(victim)]);
      ctx_->compute_us(ctx_->spec().sched_chunk_cost_us);
      auto& spans = team_->steal_spans[static_cast<std::size_t>(victim)];
      if (spans.size() > static_cast<std::size_t>(loop_id)) {
        StealSpan& span = spans[static_cast<std::size_t>(loop_id)];
        if (!span.empty()) {
          return steal_claim_for(--span.hi, chunk, total, victim);
        }
      }
    }
    return StealClaim{total, 0, tid_};
  }

 private:
  SimTeam* team_;
  sim::Context* ctx_;
  int tid_;
  int next_single_id_ = 0;
};

}  // namespace

RunResult sim_parallel(sim::Machine& machine, const ParallelConfig& config,
                       const std::function<void(TeamContext&)>& body) {
  const int num_threads = config.num_threads;
  util::require(num_threads >= 1, "sim_parallel: need at least one thread");
  util::require(body != nullptr, "sim_parallel: body must be callable");

  SimTeam team;
  team.num_threads = num_threads;
  team.barrier = machine.make_barrier(num_threads);
  team.critical_mutex = machine.make_mutex();
  team.claim_mutex = machine.make_mutex();
  team.steal_spans.resize(static_cast<std::size_t>(num_threads));
  team.steal_mutexes.reserve(static_cast<std::size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    team.steal_mutexes.push_back(machine.make_mutex());
  }
  std::unique_ptr<TraceRecorder> recorder;
  if (config.record_trace) {
    recorder = std::make_unique<TraceRecorder>(num_threads,
                                               TraceClock::SimVirtual);
    team.tracer = recorder.get();
  }
  // No abort_team hook on Sim: a CancelSignal escaping a member body rides
  // the machine's own abort teardown (every other virtual thread — even
  // one parked at a sim barrier — wakes and unwinds via sim::Aborted), so
  // the drain is deterministic in virtual time.
  std::unique_ptr<RegionGovernor> governor = RegionGovernor::for_region(
      config.cancel_token, config.deadline_s, config.chaos, num_threads);
  team.governor = governor.get();

  const auto start = std::chrono::steady_clock::now();
  sim::ExecutionReport report;
  try {
    report = machine.run([&team, &body, num_threads](sim::Context& root) {
      std::vector<sim::ThreadHandle> members;
      members.reserve(static_cast<std::size_t>(num_threads) - 1);
      for (int tid = 1; tid < num_threads; ++tid) {
        members.push_back(root.spawn([&team, &body, tid](sim::Context& ctx) {
          SimTeamContext team_ctx(team, ctx, tid);
          body(team_ctx);
        }));
      }
      SimTeamContext master_ctx(team, root, 0);
      body(master_ctx);
      for (const sim::ThreadHandle member : members) {
        root.join(member);
      }
    });
  } catch (const detail::CancelSignal&) {
    // The member that observed cancellation recorded the fire on the
    // governor before unwinding; every virtual thread has finished by the
    // time Machine::run rethrows, so the counts below are final.
    std::shared_ptr<const RunProfile> profile;
    if (recorder != nullptr) {
      profile = std::make_shared<const RunProfile>(
          recorder->finish(governor->fired_at_s()));
    }
    throw Cancelled(governor->cause(), governor->completed_counts(),
                    std::move(profile));
  }
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.host_seconds = std::chrono::duration<double>(end - start).count();
  result.sim_report = std::move(report);
  if (recorder != nullptr) {
    result.profile = std::make_shared<const RunProfile>(
        recorder->finish(result.sim_report->makespan_s));
  }
  return result;
}

}  // namespace pblpar::rt
