#include "rt/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>

#include "util/error.hpp"

namespace pblpar::rt {

std::string to_string(TraceClock clock) {
  // Exhaustive switch (no default): adding a TraceClock value without a
  // name is a compile-time -Wswitch error, and a corrupted value at
  // runtime fails loudly below instead of leaking "?" into exports.
  switch (clock) {
    case TraceClock::HostSteady:
      return "host-steady";
    case TraceClock::SimVirtual:
      return "sim-virtual";
  }
  throw util::PreconditionError("to_string: invalid TraceClock value");
}

// --- TraceRecorder ---------------------------------------------------------

TraceRecorder::TraceRecorder(int num_threads, TraceClock clock)
    : clock_(clock),
      num_threads_(num_threads),
      // Sized at construction: PerThread holds atomics (the seqlock'd live
      // counters) so it is neither movable nor copyable, and vector(n)
      // builds the blocks in place.
      threads_(static_cast<std::size_t>(std::max(num_threads, 1))) {
  util::require(num_threads >= 1, "TraceRecorder: need at least one thread");
}

void TraceRecorder::register_loop(int loop_id, const std::string& schedule,
                                  std::int64_t total) {
  WriteLock guard(loops_lock_);
  for (const LoopInfo& info : loops_) {
    if (info.loop_id == loop_id) {
      return;
    }
  }
  loops_.push_back(LoopInfo{loop_id, schedule, total});
}

namespace {

/// Relaxed add into a seqlock'd live counter: atomicity is only needed so
/// a concurrent snapshot reader gets a defined (possibly stale) value —
/// the surrounding publish() brackets give the consistency.
template <class T>
void live_add(std::atomic<T>& counter, T delta) {
  counter.store(counter.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
}

}  // namespace

void TraceRecorder::record_chunk(int tid, int loop_id, std::int64_t begin,
                                 std::int64_t end, std::uint64_t claim_order,
                                 double start_s, double end_s) {
  PerThread& thread = threads_[static_cast<std::size_t>(tid)];
  thread.chunks.push_back(
      ChunkEvent{loop_id, tid, begin, end, claim_order, start_s, end_s});
  thread.publish([&] {
    live_add(thread.live_iterations, end - begin);
    live_add(thread.live_chunks, std::uint64_t{1});
  });
}

void TraceRecorder::record_steal(int thief_tid, int loop_id, int victim_tid,
                                 std::int64_t begin, std::int64_t end,
                                 std::uint64_t claim_order, double time_s) {
  PerThread& thread = threads_[static_cast<std::size_t>(thief_tid)];
  thread.steals.push_back(StealEvent{
      loop_id, thief_tid, victim_tid, begin, end, claim_order, time_s});
  thread.publish([&] {
    live_add(thread.live_stolen_iterations, end - begin);
    live_add(thread.live_steals, std::uint64_t{1});
  });
}

void TraceRecorder::record_barrier(int tid, double arrive_s,
                                   double release_s) {
  PerThread& thread = threads_[static_cast<std::size_t>(tid)];
  thread.barriers.push_back(BarrierEvent{tid, arrive_s, release_s});
  thread.publish([&] { live_add(thread.live_barriers, std::uint64_t{1}); });
}

void TraceRecorder::record_critical(int tid, double request_s,
                                    double acquire_s, double release_s) {
  PerThread& thread = threads_[static_cast<std::size_t>(tid)];
  thread.criticals.push_back(
      CriticalEvent{tid, request_s, acquire_s, release_s});
  thread.publish([&] { live_add(thread.live_criticals, std::uint64_t{1}); });
}

void TraceRecorder::record_single_winner(int tid, int single_id) {
  PerThread& thread = threads_[static_cast<std::size_t>(tid)];
  thread.singles.push_back(SingleEvent{single_id, tid});
  thread.publish([&] { live_add(thread.live_singles, std::uint64_t{1}); });
}

void TraceRecorder::record_cancel(int tid, double time_s,
                                  const std::string& cause,
                                  std::int64_t completed_iterations) {
  threads_[static_cast<std::size_t>(tid)].cancels.push_back(
      CancelEvent{tid, time_s, cause, completed_iterations});
}

void TraceRecorder::record_inject(int tid, double time_s,
                                  const std::string& kind, double delay_s) {
  threads_[static_cast<std::size_t>(tid)].injects.push_back(
      InjectEvent{tid, time_s, kind, delay_s});
}

void TraceRecorder::record_spill(int tid, const std::string& phase,
                                 std::int64_t records, std::int64_t bytes,
                                 double start_s, double end_s) {
  PerThread& thread = threads_[static_cast<std::size_t>(tid)];
  thread.spills.push_back(
      SpillEvent{tid, phase, records, bytes, start_s, end_s});
  thread.publish([&] {
    live_add(thread.live_spills, std::uint64_t{1});
    live_add(thread.live_spill_bytes, bytes);
  });
}

void TraceRecorder::record_merge(int tid, int fan_in, std::int64_t records,
                                 std::int64_t bytes, double start_s,
                                 double end_s) {
  PerThread& thread = threads_[static_cast<std::size_t>(tid)];
  thread.merges.push_back(
      MergeEvent{tid, fan_in, records, bytes, start_s, end_s});
  thread.publish([&] { live_add(thread.live_merges, std::uint64_t{1}); });
}

RunProfile TraceRecorder::finish(double region_s) {
  RunProfile profile;
  profile.clock = clock_;
  profile.num_threads = num_threads_;
  profile.region_s = region_s;
  {
    ReadLock guard(loops_lock_);
    profile.loops = loops_;
  }
  std::sort(profile.loops.begin(), profile.loops.end(),
            [](const LoopInfo& a, const LoopInfo& b) {
              return a.loop_id < b.loop_id;
            });
  for (const PerThread& thread : threads_) {
    profile.chunks.insert(profile.chunks.end(), thread.chunks.begin(),
                          thread.chunks.end());
    profile.steals.insert(profile.steals.end(), thread.steals.begin(),
                          thread.steals.end());
    profile.barriers.insert(profile.barriers.end(), thread.barriers.begin(),
                            thread.barriers.end());
    profile.criticals.insert(profile.criticals.end(),
                             thread.criticals.begin(),
                             thread.criticals.end());
    profile.singles.insert(profile.singles.end(), thread.singles.begin(),
                           thread.singles.end());
    profile.cancels.insert(profile.cancels.end(), thread.cancels.begin(),
                           thread.cancels.end());
    profile.injects.insert(profile.injects.end(), thread.injects.begin(),
                           thread.injects.end());
    profile.spills.insert(profile.spills.end(), thread.spills.begin(),
                          thread.spills.end());
    profile.merges.insert(profile.merges.end(), thread.merges.begin(),
                          thread.merges.end());
  }
  std::sort(profile.chunks.begin(), profile.chunks.end(),
            [](const ChunkEvent& a, const ChunkEvent& b) {
              return a.claim_order < b.claim_order;
            });
  std::sort(profile.steals.begin(), profile.steals.end(),
            [](const StealEvent& a, const StealEvent& b) {
              return a.claim_order < b.claim_order;
            });
  std::sort(profile.singles.begin(), profile.singles.end(),
            [](const SingleEvent& a, const SingleEvent& b) {
              return a.single_id < b.single_id;
            });
  // Stable by (time, tid): events at the same trace timestamp (common in
  // virtual time, where a whole drain can share one instant) keep a
  // deterministic order, which is what makes Sim fingerprints byte-stable.
  std::sort(profile.cancels.begin(), profile.cancels.end(),
            [](const CancelEvent& a, const CancelEvent& b) {
              return a.time_s != b.time_s ? a.time_s < b.time_s
                                          : a.tid < b.tid;
            });
  std::sort(profile.injects.begin(), profile.injects.end(),
            [](const InjectEvent& a, const InjectEvent& b) {
              return a.time_s != b.time_s ? a.time_s < b.time_s
                                          : a.tid < b.tid;
            });
  std::sort(profile.spills.begin(), profile.spills.end(),
            [](const SpillEvent& a, const SpillEvent& b) {
              return a.start_s != b.start_s ? a.start_s < b.start_s
                                            : a.tid < b.tid;
            });
  std::sort(profile.merges.begin(), profile.merges.end(),
            [](const MergeEvent& a, const MergeEvent& b) {
              return a.start_s != b.start_s ? a.start_s < b.start_s
                                            : a.tid < b.tid;
            });
  return profile;
}

LiveSnapshot TraceRecorder::live_snapshot() const {
  LiveSnapshot snapshot;
  snapshot.active = true;
  snapshot.num_threads = num_threads_;
  snapshot.threads.resize(static_cast<std::size_t>(num_threads_));
  for (int tid = 0; tid < num_threads_; ++tid) {
    const PerThread& thread = threads_[static_cast<std::size_t>(tid)];
    LiveThreadCounters& out = snapshot.threads[static_cast<std::size_t>(tid)];
    out.tid = tid;
    // Seqlock read: bracket the relaxed counter loads between two reads
    // of the sequence. An odd v1 means the owner is mid-publish — yield
    // and retry; a changed v2 means a publish landed during the reads —
    // the possibly-mixed values are discarded and the read retried. The
    // owning worker never waits for us.
    for (;;) {
      const std::uint64_t v1 =
          thread.live_seq.load(std::memory_order_acquire);
      if ((v1 & 1) != 0) {
        std::this_thread::yield();
        continue;
      }
      out.iterations =
          thread.live_iterations.load(std::memory_order_relaxed);
      out.stolen_iterations =
          thread.live_stolen_iterations.load(std::memory_order_relaxed);
      out.chunks = thread.live_chunks.load(std::memory_order_relaxed);
      out.steals = thread.live_steals.load(std::memory_order_relaxed);
      out.barriers = thread.live_barriers.load(std::memory_order_relaxed);
      out.criticals = thread.live_criticals.load(std::memory_order_relaxed);
      out.singles_won = thread.live_singles.load(std::memory_order_relaxed);
      out.spills = thread.live_spills.load(std::memory_order_relaxed);
      out.spill_bytes =
          thread.live_spill_bytes.load(std::memory_order_relaxed);
      out.merges = thread.live_merges.load(std::memory_order_relaxed);
      // Order the data loads before the recheck; paired with the
      // publisher's acq_rel open-bracket, an unchanged v2 proves no write
      // section overlapped the loads.
#if defined(__SANITIZE_THREAD__)
      // GCC's TSan neither models a bare fence nor compiles one under
      // -Werror=tsan; an acq_rel RMW recheck keeps the data loads
      // ordered before it and is modelled exactly. Reader-side and
      // sanitizer-builds only — the writer's wait-free publish path is
      // untouched in production.
      // The const_cast is sound: an atomic RMW of zero is a pure
      // synchronization operation, not a logical mutation.
      if (const_cast<std::atomic<std::uint64_t>&>(thread.live_seq)
              .fetch_add(0, std::memory_order_acq_rel) == v1) {
        break;
      }
#else
      std::atomic_thread_fence(std::memory_order_acquire);
      if (thread.live_seq.load(std::memory_order_relaxed) == v1) {
        break;
      }
#endif
    }
  }
  return snapshot;
}

LiveTotals TraceRecorder::live_totals(int max_attempts) const {
  LiveTotals totals;
  totals.active = true;
  totals.num_threads = num_threads_;
  const auto n = static_cast<std::size_t>(num_threads_);
  std::vector<std::uint64_t> seqs(n, 0);
  std::vector<LiveThreadCounters> rows(n);

  // The recheck idiom from live_snapshot(): order prior data loads before
  // re-reading a seq, in the TSan-modelled flavour under TSan.
  const auto seq_after_loads = [&](std::size_t i) {
#if defined(__SANITIZE_THREAD__)
    return const_cast<std::atomic<std::uint64_t>&>(threads_[i].live_seq)
        .fetch_add(0, std::memory_order_acq_rel);
#else
    std::atomic_thread_fence(std::memory_order_acquire);
    return threads_[i].live_seq.load(std::memory_order_relaxed);
#endif
  };

  max_attempts = std::max(max_attempts, 1);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Pass 1: collect each thread's row under its own seqlock, keeping
    // the verified sequence value. Row i is exact at its bracket time
    // t_i, when the thread's seq was seqs[i].
    for (std::size_t i = 0; i < n; ++i) {
      const PerThread& thread = threads_[i];
      LiveThreadCounters& row = rows[i];
      row.tid = static_cast<int>(i);
      for (;;) {
        const std::uint64_t v1 =
            thread.live_seq.load(std::memory_order_acquire);
        if ((v1 & 1) != 0) {
          std::this_thread::yield();
          continue;
        }
        row.iterations =
            thread.live_iterations.load(std::memory_order_relaxed);
        row.stolen_iterations =
            thread.live_stolen_iterations.load(std::memory_order_relaxed);
        row.chunks = thread.live_chunks.load(std::memory_order_relaxed);
        row.steals = thread.live_steals.load(std::memory_order_relaxed);
        row.barriers = thread.live_barriers.load(std::memory_order_relaxed);
        row.criticals =
            thread.live_criticals.load(std::memory_order_relaxed);
        row.singles_won =
            thread.live_singles.load(std::memory_order_relaxed);
        row.spills = thread.live_spills.load(std::memory_order_relaxed);
        row.spill_bytes =
            thread.live_spill_bytes.load(std::memory_order_relaxed);
        row.merges = thread.live_merges.load(std::memory_order_relaxed);
        if (seq_after_loads(i) == v1) {
          seqs[i] = v1;
          break;
        }
      }
    }
    // Pass 2: coherence recheck at one point V after every row. If
    // thread i's seq still equals seqs[i], no publish landed in
    // [t_i, V], so row i is still exact at V — all rows passing makes
    // the collection one consistent cross-thread cut (at V). Workers
    // never wait for this; the reader owns all the retries.
    bool stable = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (seq_after_loads(i) != seqs[i]) {
        stable = false;
        break;
      }
    }
    if (stable) {
      totals.coherent = true;
      break;
    }
    // Fall through with the (incoherent) rows: each is exact at its own
    // t_i, and every counter is monotonic, so the summed totals lie
    // between the true totals at the call's start and end.
  }

  for (const LiveThreadCounters& row : rows) {
    totals.iterations += row.iterations;
    totals.stolen_iterations += row.stolen_iterations;
    totals.chunks += row.chunks;
    totals.steals += row.steals;
    totals.barriers += row.barriers;
    totals.criticals += row.criticals;
    totals.singles_won += row.singles_won;
    totals.spills += row.spills;
    totals.spill_bytes += row.spill_bytes;
    totals.merges += row.merges;
  }
  return totals;
}

// --- LiveSnapshot ----------------------------------------------------------

std::int64_t LiveSnapshot::total_iterations() const {
  std::int64_t total = 0;
  for (const LiveThreadCounters& thread : threads) {
    total += thread.iterations;
  }
  return total;
}

std::uint64_t LiveSnapshot::total_chunks() const {
  std::uint64_t total = 0;
  for (const LiveThreadCounters& thread : threads) {
    total += thread.chunks;
  }
  return total;
}

std::uint64_t LiveSnapshot::total_steals() const {
  std::uint64_t total = 0;
  for (const LiveThreadCounters& thread : threads) {
    total += thread.steals;
  }
  return total;
}

// --- RegionObserver --------------------------------------------------------

LiveSnapshot RegionObserver::snapshot() const {
  // Reader side of the handover lock: holding it pins the recorder —
  // detach() (a writer) cannot complete until every in-flight snapshot
  // drains, so the pointer stays valid for the whole sample.
  ReadLock guard(lock_);
  if (recorder_ == nullptr) {
    return LiveSnapshot{};
  }
  return recorder_->live_snapshot();
}

LiveTotals RegionObserver::totals() const {
  ReadLock guard(lock_);
  if (recorder_ == nullptr) {
    return LiveTotals{};
  }
  return recorder_->live_totals();
}

void RegionObserver::attach(const TraceRecorder* recorder) {
  WriteLock guard(lock_);
  recorder_ = recorder;
}

void RegionObserver::detach() {
  WriteLock guard(lock_);
  recorder_ = nullptr;
}

bool RegionObserver::try_attach(const TraceRecorder* recorder) {
  WriteLock guard(lock_);
  if (recorder_ != nullptr) {
    return false;
  }
  recorder_ = recorder;
  return true;
}

void RegionObserver::detach_if(const TraceRecorder* recorder) {
  WriteLock guard(lock_);
  if (recorder_ == recorder) {
    recorder_ = nullptr;
  }
}

// --- RunProfile aggregates -------------------------------------------------

std::vector<ThreadProfile> RunProfile::per_thread() const {
  std::vector<ThreadProfile> threads(
      static_cast<std::size_t>(std::max(num_threads, 0)));
  for (int tid = 0; tid < num_threads; ++tid) {
    threads[static_cast<std::size_t>(tid)].tid = tid;
  }
  for (const ChunkEvent& chunk : chunks) {
    ThreadProfile& thread = threads[static_cast<std::size_t>(chunk.tid)];
    thread.work_s += chunk.duration_s();
    thread.iterations += chunk.iterations();
    ++thread.chunks;
  }
  for (const StealEvent& steal : steals) {
    ThreadProfile& thread =
        threads[static_cast<std::size_t>(steal.thief_tid)];
    ++thread.steals;
    thread.stolen_iterations += steal.iterations();
  }
  for (const BarrierEvent& barrier : barriers) {
    ThreadProfile& thread = threads[static_cast<std::size_t>(barrier.tid)];
    thread.barrier_wait_s += barrier.wait_s();
    ++thread.barriers;
  }
  for (const CriticalEvent& critical : criticals) {
    ThreadProfile& thread = threads[static_cast<std::size_t>(critical.tid)];
    thread.critical_wait_s += critical.wait_s();
    thread.critical_hold_s += critical.hold_s();
    ++thread.criticals;
  }
  for (const SingleEvent& single : singles) {
    ++threads[static_cast<std::size_t>(single.winner_tid)].singles_won;
  }
  for (const SpillEvent& spill : spills) {
    ThreadProfile& thread = threads[static_cast<std::size_t>(spill.tid)];
    ++thread.spills;
    thread.spill_bytes += spill.bytes;
  }
  for (const MergeEvent& merge : merges) {
    ++threads[static_cast<std::size_t>(merge.tid)].merges;
  }
  return threads;
}

double RunProfile::load_imbalance() const {
  double max_work = 0.0;
  double total_work = 0.0;
  for (const ThreadProfile& thread : per_thread()) {
    max_work = std::max(max_work, thread.work_s);
    total_work += thread.work_s;
  }
  if (num_threads <= 0 || total_work <= 0.0) {
    return 1.0;
  }
  return max_work / (total_work / static_cast<double>(num_threads));
}

double RunProfile::barrier_wait_fraction() const {
  if (num_threads <= 0 || region_s <= 0.0) {
    return 0.0;
  }
  double wait = 0.0;
  for (const BarrierEvent& barrier : barriers) {
    wait += std::max(0.0, barrier.wait_s());
  }
  return wait / (static_cast<double>(num_threads) * region_s);
}

std::uint64_t RunProfile::critical_contentions(double min_wait_s) const {
  std::uint64_t contended = 0;
  for (const CriticalEvent& critical : criticals) {
    if (critical.wait_s() > min_wait_s) {
      ++contended;
    }
  }
  return contended;
}

// --- Rendering -------------------------------------------------------------

namespace {

std::string schedule_of(const std::vector<LoopInfo>& loops, int loop_id) {
  for (const LoopInfo& info : loops) {
    if (info.loop_id == loop_id) {
      return info.schedule;
    }
  }
  return "?";
}

}  // namespace

util::Table RunProfile::chunk_table(int loop_id) const {
  std::string title = "Chunk claims (" + to_string(clock) + ")";
  if (loop_id >= 0) {
    title += " — loop " + std::to_string(loop_id) + " [" +
             schedule_of(loops, loop_id) + "]";
  }
  util::Table table(title);
  table.columns({"loop", "order", "thread", "begin", "end", "iters",
                 "start ms", "end ms", "dur ms"},
                {util::Align::Right, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right, util::Align::Right});
  for (const ChunkEvent& chunk : chunks) {
    if (loop_id >= 0 && chunk.loop_id != loop_id) {
      continue;
    }
    table.row({std::to_string(chunk.loop_id),
               std::to_string(chunk.claim_order), std::to_string(chunk.tid),
               std::to_string(chunk.begin), std::to_string(chunk.end),
               std::to_string(chunk.iterations()),
               util::Table::num(chunk.start_s * 1e3, 4),
               util::Table::num(chunk.end_s * 1e3, 4),
               util::Table::num(chunk.duration_s() * 1e3, 4)});
  }
  return table;
}

std::string RunProfile::timeline_chart(int loop_id, int width) const {
  width = std::max(width, 8);
  // Scale the lanes to the span of the selected chunks (falling back to
  // the whole region) so short loops inside long regions stay readable.
  double t_min = region_s > 0.0 ? region_s : 0.0;
  double t_max = 0.0;
  bool any = false;
  for (const ChunkEvent& chunk : chunks) {
    if (loop_id >= 0 && chunk.loop_id != loop_id) {
      continue;
    }
    any = true;
    t_min = std::min(t_min, chunk.start_s);
    t_max = std::max(t_max, chunk.end_s);
  }
  if (!any) {
    return "(no chunks recorded" +
           (loop_id >= 0 ? " for loop " + std::to_string(loop_id) : "") +
           ")\n";
  }
  const double span = std::max(t_max - t_min, 1e-12);
  const auto column_of = [&](double t) {
    const int column =
        static_cast<int>((t - t_min) / span * static_cast<double>(width));
    return std::clamp(column, 0, width - 1);
  };

  const std::vector<ThreadProfile> threads = per_thread();
  std::vector<std::string> lanes(
      static_cast<std::size_t>(num_threads),
      std::string(static_cast<std::size_t>(width), '.'));
  for (const ChunkEvent& chunk : chunks) {
    if (loop_id >= 0 && chunk.loop_id != loop_id) {
      continue;
    }
    const char mark =
        static_cast<char>('0' + static_cast<int>(chunk.claim_order % 10));
    const int first = column_of(chunk.start_s);
    const int last = column_of(chunk.end_s);
    for (int c = first; c <= last; ++c) {
      lanes[static_cast<std::size_t>(chunk.tid)][static_cast<std::size_t>(
          c)] = mark;
    }
  }

  std::ostringstream out;
  if (loop_id >= 0) {
    out << "loop " << loop_id << " [" << schedule_of(loops, loop_id)
        << "], ";
  }
  out << num_threads << " threads, " << util::Table::num(span * 1e3, 3)
      << " ms shown (" << to_string(clock)
      << "; lanes marked with claim order mod 10)\n";
  for (int tid = 0; tid < num_threads; ++tid) {
    out << "  t" << tid << " |" << lanes[static_cast<std::size_t>(tid)]
        << "|  work " << util::Table::num(
               threads[static_cast<std::size_t>(tid)].work_s * 1e3, 3)
        << " ms, " << threads[static_cast<std::size_t>(tid)].iterations
        << " iters in " << threads[static_cast<std::size_t>(tid)].chunks
        << " chunk(s)\n";
  }
  for (const StealEvent& steal : steals) {
    if (loop_id >= 0 && steal.loop_id != loop_id) {
      continue;
    }
    out << "  steal t" << steal.thief_tid << "<-t" << steal.victim_tid
        << " [" << steal.begin << "," << steal.end << ") order "
        << steal.claim_order << " @ "
        << util::Table::num(steal.time_s * 1e3, 3) << " ms\n";
  }
  // Cancel/inject legends are region-level (no loop id), so they print
  // whatever loop the lanes show — the drain cuts across every loop.
  for (const InjectEvent& inject : injects) {
    out << "  inject " << inject.kind << " t" << inject.tid << " @ "
        << util::Table::num(inject.time_s * 1e3, 3) << " ms";
    if (inject.kind == "delay") {
      out << " (" << util::Table::num(inject.delay_s * 1e3, 3) << " ms)";
    }
    out << "\n";
  }
  for (const CancelEvent& cancel : cancels) {
    out << "  cancel t" << cancel.tid << " @ "
        << util::Table::num(cancel.time_s * 1e3, 3) << " ms ("
        << cancel.cause << ", " << cancel.completed_iterations
        << " iters done)\n";
  }
  // Spill/merge legends are region-level like cancels: the out-of-core
  // tier's disk traffic is visible next to the lanes it ran beside.
  for (const SpillEvent& spill : spills) {
    out << "  spill t" << spill.tid << " [" << spill.phase << "] "
        << spill.records << " records, " << spill.bytes << " B @ "
        << util::Table::num(spill.start_s * 1e3, 3) << ".."
        << util::Table::num(spill.end_s * 1e3, 3) << " ms\n";
  }
  for (const MergeEvent& merge : merges) {
    out << "  merge t" << merge.tid << " fan-in " << merge.fan_in << ", "
        << merge.records << " records, " << merge.bytes << " B @ "
        << util::Table::num(merge.start_s * 1e3, 3) << ".."
        << util::Table::num(merge.end_s * 1e3, 3) << " ms\n";
  }
  return out.str();
}

std::string RunProfile::to_csv() const {
  return chunk_table(-1).to_csv();
}

namespace {

void append_json_number(std::ostringstream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  out << value;
}

}  // namespace

std::string RunProfile::to_json() const {
  std::ostringstream out;
  out.precision(12);
  out << "{\"clock\":\"" << to_string(clock) << "\""
      << ",\"num_threads\":" << num_threads << ",\"region_s\":";
  append_json_number(out, region_s);
  out << ",\"loops\":[";
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const LoopInfo& info = loops[i];
    out << (i ? "," : "") << "{\"id\":" << info.loop_id << ",\"schedule\":\""
        << info.schedule << "\",\"total\":" << info.total << "}";
  }
  out << "],\"chunks\":[";
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const ChunkEvent& chunk = chunks[i];
    out << (i ? "," : "") << "{\"loop\":" << chunk.loop_id
        << ",\"order\":" << chunk.claim_order << ",\"tid\":" << chunk.tid
        << ",\"begin\":" << chunk.begin << ",\"end\":" << chunk.end
        << ",\"start_s\":";
    append_json_number(out, chunk.start_s);
    out << ",\"end_s\":";
    append_json_number(out, chunk.end_s);
    out << "}";
  }
  out << "],\"steals\":[";
  for (std::size_t i = 0; i < steals.size(); ++i) {
    const StealEvent& steal = steals[i];
    out << (i ? "," : "") << "{\"loop\":" << steal.loop_id
        << ",\"order\":" << steal.claim_order
        << ",\"thief\":" << steal.thief_tid
        << ",\"victim\":" << steal.victim_tid
        << ",\"begin\":" << steal.begin << ",\"end\":" << steal.end
        << ",\"time_s\":";
    append_json_number(out, steal.time_s);
    out << "}";
  }
  out << "],\"barriers\":[";
  for (std::size_t i = 0; i < barriers.size(); ++i) {
    const BarrierEvent& barrier = barriers[i];
    out << (i ? "," : "") << "{\"tid\":" << barrier.tid << ",\"arrive_s\":";
    append_json_number(out, barrier.arrive_s);
    out << ",\"release_s\":";
    append_json_number(out, barrier.release_s);
    out << "}";
  }
  out << "],\"criticals\":[";
  for (std::size_t i = 0; i < criticals.size(); ++i) {
    const CriticalEvent& critical = criticals[i];
    out << (i ? "," : "") << "{\"tid\":" << critical.tid
        << ",\"request_s\":";
    append_json_number(out, critical.request_s);
    out << ",\"acquire_s\":";
    append_json_number(out, critical.acquire_s);
    out << ",\"release_s\":";
    append_json_number(out, critical.release_s);
    out << "}";
  }
  out << "],\"singles\":[";
  for (std::size_t i = 0; i < singles.size(); ++i) {
    out << (i ? "," : "") << "{\"id\":" << singles[i].single_id
        << ",\"winner\":" << singles[i].winner_tid << "}";
  }
  out << "],\"cancels\":[";
  for (std::size_t i = 0; i < cancels.size(); ++i) {
    const CancelEvent& cancel = cancels[i];
    out << (i ? "," : "") << "{\"tid\":" << cancel.tid << ",\"time_s\":";
    append_json_number(out, cancel.time_s);
    out << ",\"cause\":\"" << cancel.cause
        << "\",\"completed_iterations\":" << cancel.completed_iterations
        << "}";
  }
  out << "],\"injects\":[";
  for (std::size_t i = 0; i < injects.size(); ++i) {
    const InjectEvent& inject = injects[i];
    out << (i ? "," : "") << "{\"tid\":" << inject.tid << ",\"time_s\":";
    append_json_number(out, inject.time_s);
    out << ",\"kind\":\"" << inject.kind << "\",\"delay_s\":";
    append_json_number(out, inject.delay_s);
    out << "}";
  }
  out << "],\"spills\":[";
  for (std::size_t i = 0; i < spills.size(); ++i) {
    const SpillEvent& spill = spills[i];
    out << (i ? "," : "") << "{\"tid\":" << spill.tid << ",\"phase\":\""
        << spill.phase << "\",\"records\":" << spill.records
        << ",\"bytes\":" << spill.bytes << ",\"start_s\":";
    append_json_number(out, spill.start_s);
    out << ",\"end_s\":";
    append_json_number(out, spill.end_s);
    out << "}";
  }
  out << "],\"merges\":[";
  for (std::size_t i = 0; i < merges.size(); ++i) {
    const MergeEvent& merge = merges[i];
    out << (i ? "," : "") << "{\"tid\":" << merge.tid
        << ",\"fan_in\":" << merge.fan_in
        << ",\"records\":" << merge.records << ",\"bytes\":" << merge.bytes
        << ",\"start_s\":";
    append_json_number(out, merge.start_s);
    out << ",\"end_s\":";
    append_json_number(out, merge.end_s);
    out << "}";
  }
  out << "],\"per_thread\":[";
  const std::vector<ThreadProfile> threads = per_thread();
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const ThreadProfile& thread = threads[i];
    out << (i ? "," : "") << "{\"tid\":" << thread.tid << ",\"work_s\":";
    append_json_number(out, thread.work_s);
    out << ",\"barrier_wait_s\":";
    append_json_number(out, thread.barrier_wait_s);
    out << ",\"critical_wait_s\":";
    append_json_number(out, thread.critical_wait_s);
    out << ",\"critical_hold_s\":";
    append_json_number(out, thread.critical_hold_s);
    out << ",\"iterations\":" << thread.iterations
        << ",\"chunks\":" << thread.chunks
        << ",\"steals\":" << thread.steals
        << ",\"stolen_iterations\":" << thread.stolen_iterations
        << ",\"barriers\":" << thread.barriers
        << ",\"criticals\":" << thread.criticals
        << ",\"singles_won\":" << thread.singles_won
        << ",\"spills\":" << thread.spills
        << ",\"spill_bytes\":" << thread.spill_bytes
        << ",\"merges\":" << thread.merges << "}";
  }
  out << "],\"load_imbalance\":";
  append_json_number(out, load_imbalance());
  out << ",\"barrier_wait_fraction\":";
  append_json_number(out, barrier_wait_fraction());
  out << "}";
  return out.str();
}

std::string RunProfile::summary() const {
  std::ostringstream out;
  out << num_threads << " threads on the " << to_string(clock) << " clock, "
      << util::Table::num(region_s * 1e3, 3) << " ms region: "
      << chunks.size() << " chunk(s) over " << loops.size()
      << " loop(s), " << steals.size() << " stolen, load imbalance "
      << util::Table::num(load_imbalance(), 3) << ", barrier-wait fraction "
      << util::Table::num(barrier_wait_fraction(), 3) << ", "
      << critical_contentions() << " contended critical entr"
      << (critical_contentions() == 1 ? "y" : "ies") << ".";
  return out.str();
}

}  // namespace pblpar::rt
