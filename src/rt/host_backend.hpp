#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>

#include "rt/config.hpp"
#include "rt/team.hpp"

namespace pblpar::rt {

/// Thrown inside team members when the region aborts because another
/// member's body threw; caught internally, never escapes to users.
class TeamAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "pblpar::rt::TeamAborted: parallel region is shutting down";
  }
};

/// A cyclic barrier that can be aborted: when one team member dies, the
/// others must not wait forever (CP.42: don't wait without a condition —
/// the condition includes shutdown).
class AbortableBarrier {
 public:
  explicit AbortableBarrier(int parties);

  /// Wait for all parties. Throws TeamAborted if abort() was called.
  ///
  /// Abort is deterministic with respect to this call: a thread returns
  /// normally only if its release happened-before abort() marked the
  /// barrier; any thread still inside arrive_and_wait when the abort flag
  /// is set — waiting, or arriving as the releasing party — throws, even
  /// if its generation was already released.
  void arrive_and_wait();

  /// Release all current and future waiters with TeamAborted.
  void abort();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool aborted_ = false;
};

/// Execute `body` as a team of `config.num_threads` real std::threads.
/// Rethrows the first exception thrown by any member after the region.
/// With config.record_trace set, attaches a RunProfile stamped on the
/// host steady clock to the result.
RunResult host_parallel(const ParallelConfig& config,
                        const std::function<void(TeamContext&)>& body);

}  // namespace pblpar::rt
