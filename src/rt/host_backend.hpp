#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>

#include "rt/config.hpp"
#include "rt/team.hpp"
#include "rt/trace.hpp"

namespace pblpar::rt {

/// Thrown inside team members when the region aborts because another
/// member's body threw; caught internally, never escapes to users.
class TeamAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "pblpar::rt::TeamAborted: parallel region is shutting down";
  }
};

/// A cyclic barrier that can be aborted: when one team member dies, the
/// others must not wait forever (CP.42: don't wait without a condition —
/// the condition includes shutdown).
class AbortableBarrier {
 public:
  explicit AbortableBarrier(int parties);

  /// Wait for all parties. Throws TeamAborted if abort() was called.
  ///
  /// Abort is deterministic with respect to this call: a thread returns
  /// normally only if its release happened-before abort() marked the
  /// barrier; any thread still inside arrive_and_wait when the abort flag
  /// is set — waiting, or arriving as the releasing party — throws, even
  /// if its generation was already released.
  void arrive_and_wait();

  /// Release all current and future waiters with TeamAborted.
  void abort();

  /// Re-arm the barrier for a fresh team of `parties` threads, clearing
  /// the abort flag and the arrival count. Only valid when no thread is
  /// inside arrive_and_wait — the worker pool calls this between regions,
  /// after it has observed every member of the previous region exit.
  void reset(int parties);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int parties_;
  int arrived_ = 0;
  /// Atomic so waiters can yield-spin for the release outside mu_ — on a
  /// loaded machine that detects it without a futex wake per waiter.
  /// Writes still happen under mu_ for the condvar fallback path.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> aborted_{false};
};

/// Execute `body` as a team of `config.num_threads` real threads.
/// Rethrows the first exception thrown by any member after the region.
/// With config.record_trace set, attaches a RunProfile stamped on the
/// host steady clock to the result.
///
/// With config.use_pool (the default) the region runs on the process-wide
/// persistent worker pool: the calling thread is always member 0 and
/// num_threads - 1 pool workers — spawned on first use, parked between
/// regions, re-used thereafter — are the rest. Nested or concurrent
/// regions that find the pool busy fall back to spawning a fresh team, so
/// pooling never changes which programs are valid, only how fast regions
/// launch.
RunResult host_parallel(const ParallelConfig& config,
                        const std::function<void(TeamContext&)>& body);

/// Pre-spawn the persistent pool's workers for teams of up to
/// `num_threads` (i.e. num_threads - 1 workers). Call before a timed or
/// latency-sensitive section so the first region does not pay thread
/// creation. No-op if the pool is already at least that wide.
void warm_host_pool(int num_threads);

/// One wait-free-read view of the process-wide worker pool, for dashboards
/// and benches sampling from outside any region.
struct PoolSnapshot {
  int workers = 0;   // persistent workers currently spawned (excl. callers)
  bool busy = false;  // a region holds the pool right now
  std::uint64_t pooled_regions = 0;   // regions that ran on the pool
  std::uint64_t spawned_regions = 0;  // regions that fell back to spawning

  /// Coherent whole-region totals of the traced region currently running
  /// on the backend, aggregated from the per-thread seqlocked live
  /// counters (LiveTotals::active false when no traced region is up; see
  /// TraceRecorder::live_totals for the coherent-cut semantics).
  LiveTotals live;
};

/// Sample the pool. Safe from any thread at any time; never blocks a
/// running region — readers take a shared handover lock the regions only
/// write-touch at start/end, and the counter sample itself is the
/// seqlock-retry read documented on TraceRecorder::live_totals.
PoolSnapshot pool_snapshot();

}  // namespace pblpar::rt
