#pragma once

#include <cstdint>
#include <functional>

#include "rt/schedule.hpp"
#include "rt/team.hpp"

namespace pblpar::rt {

/// Chunk size the scheduler hands out when `remaining` iterations are left.
/// Shared by every backend so host and sim agree on chunk shapes.
std::int64_t chunk_size_for(const Schedule& schedule, std::int64_t remaining,
                            int num_threads);

/// Worksharing loop over `range` (OpenMP's `#pragma omp for`).
///
/// Must be encountered by every member of the team. Iterations are
/// distributed according to `schedule`; `body` receives global iteration
/// indices. `cost` is charged to the simulator per chunk (ignored on the
/// host backend). Ends with an implicit team barrier unless
/// `barrier_at_end` is false (OpenMP's nowait).
void for_loop(TeamContext& tc, Range range, Schedule schedule,
              const std::function<void(std::int64_t)>& body,
              const CostModel& cost = {}, bool barrier_at_end = true);

}  // namespace pblpar::rt
