#pragma once

#include <cstdint>
#include <functional>

#include "rt/schedule.hpp"
#include "rt/team.hpp"

namespace pblpar::rt {

/// Chunk size the scheduler hands out when `remaining` iterations are left.
/// Shared by every backend so host and sim agree on chunk shapes.
std::int64_t chunk_size_for(const Schedule& schedule, std::int64_t remaining,
                            int num_threads);

/// Claim size of schedules whose chunks do not depend on the remaining
/// work (everything but guided), clamped to the loop length so claims
/// racing past the end overshoot a shared fetch_add counter by at most
/// one grab each without ever overflowing it. Matches chunk_size_for on
/// the same schedule, which is what keeps the wait-free fetch_add claim
/// path and the CAS path interchangeable chunk-for-chunk.
inline std::int64_t fixed_claim_size(const Schedule& schedule,
                                     std::int64_t total) {
  const std::int64_t chunk = schedule.chunk > 0 ? schedule.chunk : 1;
  return total > 0 ? (chunk < total ? chunk : total) : 1;
}

/// Chunk size a Schedule::steal loop is split into before the chunks are
/// dealt to the per-thread deques. An explicit schedule.chunk wins
/// (clamped to the loop length); chunk 0 auto-sizes so every thread
/// starts with roughly 16 chunks — local pops stay cheap while thieves
/// still find granularity worth migrating. Shared by both backends so
/// host and sim deal identical deques.
std::int64_t steal_chunk_size(const Schedule& schedule, std::int64_t total,
                              int num_threads);

/// Remaining contiguous block of chunk indices in one thread's steal
/// deque: [lo, hi). The owner pops from lo (ascending walk of its block);
/// thieves take from hi.
struct StealSpan {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  bool empty() const { return lo >= hi; }
};

/// The block of chunk indices initially dealt to `tid` when `total`
/// iterations are split into chunks of `chunk`: the OpenMP-static block
/// partition of the chunk index space, remainder to the first threads.
StealSpan steal_initial_span(std::int64_t total, std::int64_t chunk,
                             int num_threads, int tid);

/// The iteration claim produced when chunk index `chunk_index` of a steal
/// loop (chunks of size `chunk` over `total` iterations) is removed from
/// `victim`'s deque. The final chunk is clamped to the loop end.
StealClaim steal_claim_for(std::int64_t chunk_index, std::int64_t chunk,
                           std::int64_t total, int victim);

/// Worksharing loop over `range` (OpenMP's `#pragma omp for`).
///
/// Must be encountered by every member of the team. Iterations are
/// distributed according to `schedule`; `body` receives global iteration
/// indices. `cost` is charged to the simulator per chunk (ignored on the
/// host backend). Ends with an implicit team barrier unless
/// `barrier_at_end` is false (OpenMP's nowait).
void for_loop(TeamContext& tc, Range range, Schedule schedule,
              const std::function<void(std::int64_t)>& body,
              const CostModel& cost = {}, bool barrier_at_end = true);

}  // namespace pblpar::rt
