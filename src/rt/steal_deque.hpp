#pragma once

#include <atomic>
#include <cstdint>

#include "rt/loops.hpp"

namespace pblpar::rt {

namespace detail {

/// The algorithm's full barrier. GCC's ThreadSanitizer neither models
/// std::atomic_thread_fence nor compiles it under -Werror=tsan; in
/// instrumented builds a seq_cst RMW on a process-wide sync word is a
/// drop-in replacement the tool understands exactly — the RMWs form a
/// release sequence, so everything sequenced before one is visible to
/// every later one — and is at least as strong on hardware.
inline void full_fence() {
#if defined(__SANITIZE_THREAD__)
  static std::atomic<unsigned> sync{0};
  sync.fetch_add(1, std::memory_order_seq_cst);
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace detail

/// Outcome of a thief's attempt on one ChaseLevSpan.
enum class StealOutcome {
  kGot,    // the thief owns the returned chunk index
  kEmpty,  // nothing left in this deque; move on to the next victim
  kLost,   // lost a CAS race — someone else claimed a chunk; retry
};

/// Chase–Lev work-stealing deque specialised to a contiguous span of
/// chunk indices [lo, hi).
///
/// The general Chase–Lev deque keeps a circular buffer between a bottom
/// index the owner pushes/pops and a top index thieves CAS. A steal-
/// schedule loop never pushes after install — each member's block of
/// chunk indices is dealt once and only drained — so the buffer
/// degenerates to the pair of bounds itself: the owner claims ascending
/// indices by advancing `lo` (its LIFO end, a cache-friendly walk of its
/// block), thieves claim descending indices by CASing `hi` down (the
/// FIFO end, the chunk the owner would reach last). The memory-ordering
/// skeleton is exactly Chase–Lev as made precise by Lê/Pop/Cohen/
/// Zappa Nardelli (CPPmem-verified, PPoPP'13), with the roles of the two
/// ends mirrored:
///
///   - the owner's claim is a relaxed reservation (`lo = l + 1`)
///     followed by one seq_cst fence and a relaxed read of `hi`;
///   - a thief reads `hi` then, after a seq_cst fence, `lo`, and commits
///     with a single seq_cst CAS on `hi`;
///   - only the last element is ever raced, and that race is resolved by
///     the owner CASing `hi` itself — whoever moves `hi` owns the chunk.
///
/// Owner claims are therefore wait-free (no loops, no CAS except for the
/// final element), and thieves are lock-free (a failed CAS means another
/// claimant made progress). There is no element payload to protect: the
/// "element" is the chunk index, and visibility of the loop's data is
/// the job of the region's barriers, exactly as for the shared-counter
/// schedules.
class ChaseLevSpan {
 public:
  /// Publish a fresh span. Owner-side only; thieves that scan before the
  /// install lands see the previous (cleared, empty) state. `lo` is
  /// written first and `hi` released after it, so a thief that observes
  /// the new `hi` also observes the matching `lo` and never steals from
  /// a half-installed span.
  void install(StealSpan span) {
    lo_.store(span.lo, std::memory_order_relaxed);
    hi_.store(span.hi, std::memory_order_release);
  }

  /// Reset to empty. Only valid while the deque is quiescent (the team
  /// reset protocol: no member of the previous region still running).
  void clear() {
    lo_.store(0, std::memory_order_relaxed);
    hi_.store(0, std::memory_order_relaxed);
  }

  /// Owner-side claim of the lowest remaining chunk index. Returns false
  /// when the deque is empty (or the final element was lost to a thief).
  bool take(std::int64_t* chunk_index) {
    const std::int64_t l = lo_.load(std::memory_order_relaxed);
    lo_.store(l + 1, std::memory_order_relaxed);
    // The single fence of the algorithm: the optimistic reservation of
    // `lo` must be globally visible before `hi` is read, or a thief and
    // the owner could both conclude the other end still holds the last
    // element and claim it twice.
    detail::full_fence();
    std::int64_t h = hi_.load(std::memory_order_relaxed);
    if (l + 1 < h) {
      // At least two elements remained; the reservation can't have raced
      // anything — thieves only ever contend for the very last one.
      *chunk_index = l;
      return true;
    }
    if (l < h) {
      // Exactly one element remained and a thief may be CASing `hi` for
      // it right now. Settle the race on `hi` itself: whoever moves it
      // from h to h - 1 owns the element. Either way `lo` is restored so
      // the deque ends in the canonical empty state lo == hi.
      const bool won =
          hi_.compare_exchange_strong(h, h - 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed);
      lo_.store(l, std::memory_order_relaxed);
      if (won) {
        *chunk_index = l;
        return true;
      }
      return false;
    }
    // Already empty; undo the reservation.
    lo_.store(l, std::memory_order_relaxed);
    return false;
  }

  /// Thief-side claim of the highest remaining chunk index.
  StealOutcome steal(std::int64_t* chunk_index) {
    std::int64_t h = hi_.load(std::memory_order_acquire);
    // Mirror of the owner's fence: `hi` must be read before `lo`, or a
    // stale `lo` paired with a fresh `hi` could make a drained deque
    // look one element long.
    detail::full_fence();
    const std::int64_t l = lo_.load(std::memory_order_acquire);
    if (l >= h) {
      return StealOutcome::kEmpty;
    }
    if (hi_.compare_exchange_strong(h, h - 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
      *chunk_index = h - 1;
      return StealOutcome::kGot;
    }
    // Another thief (or the owner resolving the last-element race) moved
    // `hi` first; the system made progress, so just retry.
    return StealOutcome::kLost;
  }

 private:
  std::atomic<std::int64_t> lo_{0};  // owner end: next index the owner claims
  std::atomic<std::int64_t> hi_{0};  // thief end: one past the last index
};

}  // namespace pblpar::rt
