#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/rwlock.hpp"
#include "rt/team.hpp"
#include "util/table.hpp"

namespace pblpar::rt {

/// Which clock stamped the events of a profile. Host traces use the real
/// steady clock; Sim traces use the machine's virtual clock — the schema
/// is otherwise identical, so students can diff real vs modelled runs.
enum class TraceClock { HostSteady, SimVirtual };

std::string to_string(TraceClock clock);

/// Identity of one worksharing loop inside a region. Loop ids are the
/// per-member sequence numbers from TeamContext::next_loop_id, so equal
/// ids across threads refer to the same source loop.
struct LoopInfo {
  int loop_id = 0;
  std::string schedule;     // Schedule::to_string() of the loop
  std::int64_t total = 0;   // iteration count of the loop
};

/// One chunk of loop iterations executed by one thread.
struct ChunkEvent {
  int loop_id = 0;
  int tid = 0;
  std::int64_t begin = 0;  // global iteration indices [begin, end)
  std::int64_t end = 0;
  /// Region-wide claim sequence number: the order in which chunks started
  /// executing. For dynamic/guided loops this is the queue-claim order.
  std::uint64_t claim_order = 0;
  double start_s = 0.0;  // seconds since region start, on the trace clock
  double end_s = 0.0;

  std::int64_t iterations() const { return end - begin; }
  double duration_s() const { return end_s - start_s; }
};

/// One chunk migration of a Schedule::steal loop: `thief_tid` took the
/// iterations [begin, end) out of `victim_tid`'s deque. `claim_order`
/// equals the claim order of the ChunkEvent the thief then recorded for
/// the stolen chunk, so a timeline can link the migration to the
/// execution span it produced.
struct StealEvent {
  int loop_id = 0;
  int thief_tid = 0;
  int victim_tid = 0;
  std::int64_t begin = 0;  // global iteration indices [begin, end)
  std::int64_t end = 0;
  std::uint64_t claim_order = 0;
  double time_s = 0.0;  // when the steal claim happened, on the trace clock

  std::int64_t iterations() const { return end - begin; }
};

/// One thread's passage through one barrier episode.
struct BarrierEvent {
  int tid = 0;
  double arrive_s = 0.0;   // when the thread arrived at the barrier
  double release_s = 0.0;  // when it was released

  double wait_s() const { return release_s - arrive_s; }
};

/// One thread's passage through one critical section.
struct CriticalEvent {
  int tid = 0;
  double request_s = 0.0;  // when the thread asked for the lock
  double acquire_s = 0.0;  // when it entered the section
  double release_s = 0.0;  // when it left

  double wait_s() const { return acquire_s - request_s; }
  double hold_s() const { return release_s - acquire_s; }
};

/// Winner of one worksharing single construct.
struct SingleEvent {
  int single_id = 0;
  int winner_tid = 0;
};

/// One team member observing the region's cancellation at a chunk-claim
/// boundary. Only members that reach a poll point after the fire record
/// one (a member parked at the aborted end-of-region barrier drains
/// without an event); at most one per member per region.
struct CancelEvent {
  int tid = 0;
  double time_s = 0.0;    // when the member observed it, on the trace clock
  std::string cause;      // to_string(CancelCause): "token" / "deadline"
  std::int64_t completed_iterations = 0;  // this member's progress so far
};

/// One ChaosPlan injection at a chunk-claim boundary: `kind` is "delay"
/// (the member stalled `delay_s`) or "throw" (ChaosInjected was raised).
struct InjectEvent {
  int tid = 0;
  double time_s = 0.0;
  std::string kind;
  double delay_s = 0.0;  // 0 for throws
};

/// One spill of sorted records to a scratch run file by the out-of-core
/// tier. `phase` names the producer: "extsort-run" (external sort run
/// formation) or "shuffle" (a map worker crossing its memory budget).
struct SpillEvent {
  int tid = 0;
  std::string phase;
  std::int64_t records = 0;
  std::int64_t bytes = 0;      // bytes written to the run file
  double start_s = 0.0;        // seconds since region start, trace clock
  double end_s = 0.0;

  double duration_s() const { return end_s - start_s; }
};

/// One k-way merge of sorted runs (from disk and/or memory) by the
/// out-of-core tier: `fan_in` sources were drained into `records` output
/// records; `bytes` counts the bytes read back from spill files.
struct MergeEvent {
  int tid = 0;
  int fan_in = 0;
  std::int64_t records = 0;
  std::int64_t bytes = 0;
  double start_s = 0.0;
  double end_s = 0.0;

  double duration_s() const { return end_s - start_s; }
};

/// Per-thread aggregate of a RunProfile.
struct ThreadProfile {
  int tid = 0;
  double work_s = 0.0;           // total time inside loop chunks
  double barrier_wait_s = 0.0;   // total time blocked at barriers
  double critical_wait_s = 0.0;  // total time waiting to enter criticals
  double critical_hold_s = 0.0;  // total time holding criticals
  std::int64_t iterations = 0;
  std::uint64_t chunks = 0;
  std::uint64_t barriers = 0;
  std::uint64_t criticals = 0;
  std::uint64_t singles_won = 0;
  std::uint64_t steals = 0;             // chunks this thread stole
  std::int64_t stolen_iterations = 0;   // iterations it gained that way
  std::uint64_t spills = 0;             // out-of-core runs it wrote
  std::int64_t spill_bytes = 0;         // bytes it spilled to disk
  std::uint64_t merges = 0;             // k-way merges it performed
};

/// Full observability record of one parallel region, attached to
/// RunResult when ParallelConfig::record_trace is set. Event timestamps
/// are seconds since region start on `clock`.
struct RunProfile {
  TraceClock clock = TraceClock::HostSteady;
  int num_threads = 0;
  double region_s = 0.0;  // region duration on the trace clock

  std::vector<LoopInfo> loops;
  std::vector<ChunkEvent> chunks;  // sorted by claim_order
  std::vector<StealEvent> steals;  // sorted by claim_order
  std::vector<BarrierEvent> barriers;
  std::vector<CriticalEvent> criticals;
  std::vector<SingleEvent> singles;
  std::vector<CancelEvent> cancels;  // sorted by time_s
  std::vector<InjectEvent> injects;  // sorted by time_s
  std::vector<SpillEvent> spills;    // sorted by (start_s, tid)
  std::vector<MergeEvent> merges;    // sorted by (start_s, tid)

  /// Aggregates indexed by tid.
  std::vector<ThreadProfile> per_thread() const;

  /// max(per-thread work) / mean(per-thread work); 1.0 is a perfectly
  /// balanced loop, num_threads is "one thread did everything".
  double load_imbalance() const;

  /// Fraction of the region's total thread-time spent blocked at
  /// barriers: sum(barrier waits) / (num_threads * region_s), in [0, 1].
  double barrier_wait_fraction() const;

  /// Critical entries that waited longer than `min_wait_s`. The default
  /// threshold sits above an uncontended acquire on both backends (the
  /// Sim machine charges ~0.8us even without contention).
  std::uint64_t critical_contentions(double min_wait_s = 1e-6) const;

  /// Chunk events of one loop (or all loops when loop_id < 0) as a table:
  /// order, thread, [begin,end), iterations, start/end/duration in ms.
  util::Table chunk_table(int loop_id = -1) const;

  /// ASCII per-thread chunk timeline (one lane per thread, time on the
  /// x-axis, each chunk drawn with the last digit of its claim order):
  ///
  ///   t0 |000000111111........|  work  1.23 ms
  ///   t1 |222222......33333333|  work  1.10 ms
  ///
  /// Dots are time outside any chunk of the selected loop (waiting at
  /// the tail barrier, claiming, or running other code). Steal-schedule
  /// loops append one legend line per migration ("steal t2<-t0 ...") so
  /// the chunk marked with that claim order can be traced to its victim;
  /// cancelled or chaos-injected regions append one legend line per
  /// CancelEvent ("cancel t1 ...") and InjectEvent ("inject delay t0
  /// ...") so the drain is visible next to the lanes it cut short.
  std::string timeline_chart(int loop_id = -1, int width = 64) const;

  /// Machine-readable exports (schema identical across backends).
  std::string to_json() const;
  std::string to_csv() const;

  /// One-paragraph human summary: threads, imbalance, barrier fraction.
  std::string summary() const;
};

/// One thread's live counters as sampled mid-region by an observer; a
/// consistent cut of that thread's bookkeeping (iterations never ahead of
/// the chunks that produced them).
struct LiveThreadCounters {
  int tid = 0;
  std::int64_t iterations = 0;
  std::int64_t stolen_iterations = 0;
  std::uint64_t chunks = 0;
  std::uint64_t steals = 0;
  std::uint64_t barriers = 0;
  std::uint64_t criticals = 0;
  std::uint64_t singles_won = 0;
  std::uint64_t spills = 0;
  std::int64_t spill_bytes = 0;
  std::uint64_t merges = 0;
};

/// Mid-region progress sample. `active` is false when no traced region
/// was running at sample time (then `threads` is empty).
struct LiveSnapshot {
  bool active = false;
  int num_threads = 0;
  std::vector<LiveThreadCounters> threads;

  std::int64_t total_iterations() const;
  std::uint64_t total_chunks() const;
  std::uint64_t total_steals() const;
};

/// Whole-recorder aggregate of the per-thread live counters, taken as one
/// coherent cut when possible: the reader double-collects every thread's
/// seqlock sequence around the counter loads and only accepts the totals
/// if no thread published in between. Writers stay wait-free — the reader
/// does all the retrying, and after `max_attempts` collisions it returns
/// the last collect with `coherent == false` (each per-thread value is
/// still exact at *some* instant during the call, and all counters are
/// monotonic, so an incoherent total is bracketed by the true totals at
/// the call's start and end).
struct LiveTotals {
  bool active = false;    // a recorder was attached / sampled
  bool coherent = false;  // totals form one consistent cross-thread cut
  int num_threads = 0;
  std::int64_t iterations = 0;
  std::int64_t stolen_iterations = 0;
  std::uint64_t chunks = 0;
  std::uint64_t steals = 0;
  std::uint64_t barriers = 0;
  std::uint64_t criticals = 0;
  std::uint64_t singles_won = 0;
  std::uint64_t spills = 0;
  std::int64_t spill_bytes = 0;
  std::uint64_t merges = 0;
};

/// Collector the backends write events into while a region runs.
///
/// Hot-path discipline: per-thread event buffers (no shared mutable state
/// on record_chunk/record_barrier/record_critical), one relaxed atomic
/// fetch_add for the claim order. The cold register_loop path takes a
/// writer lock. finish() must only be called after every member joined.
///
/// Each record_* additionally publishes into a per-thread seqlock'd
/// counter block so live_snapshot() can read mid-region progress without
/// ever blocking a worker: the writer side is two wait-free fetch_adds
/// around a handful of relaxed stores, and only the (observer) reader
/// loops.
class TraceRecorder {
 public:
  TraceRecorder(int num_threads, TraceClock clock);

  /// Dedup-registers a loop's metadata (called by every member; cold).
  void register_loop(int loop_id, const std::string& schedule,
                     std::int64_t total);

  /// Next region-wide claim sequence number.
  std::uint64_t next_claim_order() {
    return claim_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  void record_chunk(int tid, int loop_id, std::int64_t begin,
                    std::int64_t end, std::uint64_t claim_order,
                    double start_s, double end_s);
  void record_steal(int thief_tid, int loop_id, int victim_tid,
                    std::int64_t begin, std::int64_t end,
                    std::uint64_t claim_order, double time_s);
  void record_barrier(int tid, double arrive_s, double release_s);
  void record_critical(int tid, double request_s, double acquire_s,
                       double release_s);
  void record_single_winner(int tid, int single_id);
  void record_cancel(int tid, double time_s, const std::string& cause,
                     std::int64_t completed_iterations);
  void record_inject(int tid, double time_s, const std::string& kind,
                     double delay_s);
  void record_spill(int tid, const std::string& phase, std::int64_t records,
                    std::int64_t bytes, double start_s, double end_s);
  void record_merge(int tid, int fan_in, std::int64_t records,
                    std::int64_t bytes, double start_s, double end_s);

  /// Merge all buffers into a profile; `region_s` is the region duration
  /// on this recorder's clock.
  RunProfile finish(double region_s);

  /// Consistent mid-region sample of every thread's counters. Safe to
  /// call from any thread while members are recording; workers never
  /// block or retry for it — the reader does all the waiting.
  LiveSnapshot live_snapshot() const;

  /// One coherent whole-pool total of every thread's live counters (see
  /// LiveTotals). Wait-free for the workers; the reader retries up to
  /// `max_attempts` double-collects before settling for an incoherent
  /// (but per-thread-exact, monotonicity-bracketed) total.
  LiveTotals live_totals(int max_attempts = 64) const;

 private:
  /// Cache-line aligned: every record_* call appends to its own thread's
  /// buffers, and adjacent threads' vector headers sharing a line would
  /// make a traced run measure false sharing instead of the program.
  ///
  /// The live_* block is a seqlock: live_seq is odd while the owning
  /// thread updates, and readers retry until they bracket a stable even
  /// value. The counter fields are themselves atomics (relaxed) so a
  /// reader racing a writer reads torn-but-defined values that the
  /// sequence recheck then discards — no data race, under TSan or the
  /// standard. Only the owning tid ever writes its block.
  struct alignas(kCacheLineBytes) PerThread {
    std::vector<ChunkEvent> chunks;
    std::vector<StealEvent> steals;
    std::vector<BarrierEvent> barriers;
    std::vector<CriticalEvent> criticals;
    std::vector<SingleEvent> singles;
    std::vector<CancelEvent> cancels;
    std::vector<InjectEvent> injects;
    std::vector<SpillEvent> spills;
    std::vector<MergeEvent> merges;

    std::atomic<std::uint64_t> live_seq{0};
    std::atomic<std::int64_t> live_iterations{0};
    std::atomic<std::int64_t> live_stolen_iterations{0};
    std::atomic<std::uint64_t> live_chunks{0};
    std::atomic<std::uint64_t> live_steals{0};
    std::atomic<std::uint64_t> live_barriers{0};
    std::atomic<std::uint64_t> live_criticals{0};
    std::atomic<std::uint64_t> live_singles{0};
    std::atomic<std::uint64_t> live_spills{0};
    std::atomic<std::int64_t> live_spill_bytes{0};
    std::atomic<std::uint64_t> live_merges{0};

    /// Run `update` (relaxed stores into the live_* fields) inside one
    /// seqlock write section. Wait-free: two fetch_adds, no loops.
    template <class Update>
    void publish(Update&& update) {
      live_seq.fetch_add(1, std::memory_order_acq_rel);  // odd: in progress
      update();
      live_seq.fetch_add(1, std::memory_order_release);  // even: stable
    }
  };

  TraceClock clock_;
  int num_threads_;
  std::vector<PerThread> threads_;
  std::atomic<std::uint64_t> claim_seq_{0};
  /// Hand-made rwlock (see rt/rwlock.hpp): register_loop writes are rare
  /// and dedup-bounded; observer-side metadata reads share the lock.
  mutable RwLock loops_lock_;
  std::vector<LoopInfo> loops_;
};

/// Live view onto whatever traced region is currently running — the
/// monitoring half of the lock-free core. A long-lived observer object is
/// handed to ParallelConfig::observed(); the host backend attaches the
/// region's TraceRecorder at launch and detaches it before the recorder
/// dies, and any thread may call snapshot() meanwhile. Workers never wait
/// for an observer: snapshot readers do all the retrying (per-thread
/// seqlocks), and the attach/detach handover uses the hand-made
/// writer-preferring RwLock so a detach can't yank the recorder out from
/// under a reader mid-sample.
class RegionObserver {
 public:
  /// Sample the attached region's per-thread counters; inactive snapshot
  /// when no traced region is attached right now.
  LiveSnapshot snapshot() const;

  /// Coherent whole-region totals of the attached recorder (see
  /// TraceRecorder::live_totals); inactive totals when none is attached.
  LiveTotals totals() const;

  /// Backend-internal: called by the host backend at region start/end.
  void attach(const TraceRecorder* recorder);
  void detach();

  /// Backend-internal variants for shared observers (the process-wide
  /// pool observer behind rt::pool_snapshot): attach only when empty, and
  /// detach only the recorder this region attached — two overlapping
  /// regions then never yank each other's recorder.
  bool try_attach(const TraceRecorder* recorder);
  void detach_if(const TraceRecorder* recorder);

 private:
  mutable RwLock lock_;
  const TraceRecorder* recorder_ = nullptr;
};

}  // namespace pblpar::rt
