#pragma once

#include <functional>

#include "rt/config.hpp"
#include "rt/loops.hpp"
#include "rt/schedule.hpp"
#include "rt/team.hpp"

namespace pblpar::rt {

/// TeachMP's `#pragma omp parallel`: run `body` on a team of
/// config.num_threads threads, on the configured backend.
///
/// The fork-join pattern from the paper's Assignment 2 is exactly this
/// call: the caller forks a team, every member runs the same body (SPMD),
/// and the call returns when all members joined.
RunResult parallel(const ParallelConfig& config,
                   const std::function<void(TeamContext&)>& body);

/// TeachMP's `#pragma omp parallel for`: a parallel region containing a
/// single worksharing loop. `body` receives global iteration indices.
RunResult parallel_for(const ParallelConfig& config, Range range,
                       Schedule schedule,
                       const std::function<void(std::int64_t)>& body,
                       const CostModel& cost = {});

/// Pre-create the execution resources `config` will use so the first
/// region does not pay one-time setup inside a timed section: for a
/// pooled Host config this spawns the persistent pool's workers (they
/// then park until the first region). A no-op for Sim configs (virtual
/// threads are free) and for configs that opted out of the pool.
void warm_up(const ParallelConfig& config);

}  // namespace pblpar::rt
