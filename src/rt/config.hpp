#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <thread>

#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/spec.hpp"

namespace pblpar::rt {

struct RunProfile;

/// Number of hardware threads on the host, never less than 1 (the
/// standard allows hardware_concurrency() to return 0 when unknown).
/// The canonical "how wide should a thread-local run be" answer for code
/// that wants to match the machine rather than hard-code a width.
inline int hardware_threads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

/// Which substrate executes a parallel region.
enum class BackendKind {
  /// Real std::thread execution on the host. Results are real-time; on a
  /// host with fewer cores than threads the speedup is bounded by the
  /// host, not the model.
  Host,

  /// Deterministic virtual-time execution on the pblpar::sim machine.
  /// This is the paper-faithful configuration: timings reflect the
  /// simulated Raspberry Pi regardless of the host.
  Sim,
};

/// Configuration of one parallel region (the TeachMP analogue of
/// OMP_NUM_THREADS + the target machine).
struct ParallelConfig {
  int num_threads = 4;
  BackendKind backend = BackendKind::Sim;

  /// Machine model for the Sim backend (ignored by Host).
  sim::MachineSpec machine = sim::MachineSpec::raspberry_pi_3bplus();

  /// Run on an existing machine instead of a fresh one — e.g. one with a
  /// race detector attached. Not owned; must outlive the call.
  sim::Machine* external_machine = nullptr;

  /// Record a per-thread execution trace (chunk claims, steal-schedule
  /// chunk migrations, barrier waits, critical sections, single winners)
  /// into RunResult::profile. Off by default: the hot paths then skip all
  /// bookkeeping.
  bool record_trace = false;

  /// Host backend only: run the region on the process-wide persistent
  /// worker pool (workers spawn once and park between regions) instead of
  /// spawning fresh threads per region. On by default — that is what real
  /// OpenMP runtimes do, and it takes region launch off the critical path
  /// of thread-count sweeps. Set false to measure raw spawn cost or to
  /// guarantee a region runs on threads no other code has touched.
  /// Ignored by the Sim backend (virtual threads cost nothing to fork).
  bool use_pool = true;

  /// Copy of this config with tracing switched on.
  ParallelConfig traced() const {
    ParallelConfig config = *this;
    config.record_trace = true;
    return config;
  }

  /// Copy of this config that bypasses the persistent worker pool and
  /// spawns fresh threads for the region (the pre-pool behaviour).
  ParallelConfig unpooled() const {
    ParallelConfig config = *this;
    config.use_pool = false;
    return config;
  }

  static ParallelConfig sim_pi(int num_threads = 4) {
    ParallelConfig config;
    config.num_threads = num_threads;
    config.backend = BackendKind::Sim;
    return config;
  }

  static ParallelConfig host(int num_threads = 4) {
    ParallelConfig config;
    config.num_threads = num_threads;
    config.backend = BackendKind::Host;
    return config;
  }
};

/// Outcome of one parallel region.
struct RunResult {
  /// Host wall-clock of the region, in seconds (both backends).
  double host_seconds = 0.0;

  /// Virtual-time report (Sim backend only).
  std::optional<sim::ExecutionReport> sim_report;

  /// Per-thread trace profile; only set when ParallelConfig::record_trace
  /// was on. Shared so RunResult stays cheap to copy.
  std::shared_ptr<const RunProfile> profile;

  /// Virtual time if simulated, host time otherwise.
  double elapsed_seconds() const {
    return sim_report ? sim_report->makespan_s : host_seconds;
  }
};

}  // namespace pblpar::rt
