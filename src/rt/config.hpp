#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <thread>

#include "rt/cancel.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/spec.hpp"
#include "util/error.hpp"

namespace pblpar::rt {

struct RunProfile;
class RegionObserver;

/// Number of hardware threads on the host, never less than 1 (the
/// standard allows hardware_concurrency() to return 0 when unknown).
/// The canonical "how wide should a thread-local run be" answer for code
/// that wants to match the machine rather than hard-code a width.
inline int hardware_threads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

/// Which substrate executes a parallel region.
enum class BackendKind {
  /// Real std::thread execution on the host. Results are real-time; on a
  /// host with fewer cores than threads the speedup is bounded by the
  /// host, not the model.
  Host,

  /// Deterministic virtual-time execution on the pblpar::sim machine.
  /// This is the paper-faithful configuration: timings reflect the
  /// simulated Raspberry Pi regardless of the host.
  Sim,
};

/// Configuration of one parallel region (the TeachMP analogue of
/// OMP_NUM_THREADS + the target machine).
struct ParallelConfig {
  int num_threads = 4;
  BackendKind backend = BackendKind::Sim;

  /// Machine model for the Sim backend (ignored by Host).
  sim::MachineSpec machine = sim::MachineSpec::raspberry_pi_3bplus();

  /// Run on an existing machine instead of a fresh one — e.g. one with a
  /// race detector attached. Not owned; must outlive the call.
  sim::Machine* external_machine = nullptr;

  /// Record a per-thread execution trace (chunk claims, steal-schedule
  /// chunk migrations, barrier waits, critical sections, single winners)
  /// into RunResult::profile. Off by default: the hot paths then skip all
  /// bookkeeping.
  bool record_trace = false;

  /// Host backend only: run the region on the process-wide persistent
  /// worker pool (workers spawn once and park between regions) instead of
  /// spawning fresh threads per region. On by default — that is what real
  /// OpenMP runtimes do, and it takes region launch off the critical path
  /// of thread-count sweeps. Set false to measure raw spawn cost or to
  /// guarantee a region runs on threads no other code has touched.
  /// Ignored by the Sim backend (virtual threads cost nothing to fork).
  bool use_pool = true;

  /// Cooperative cancellation token; every team member polls it at
  /// chunk-claim boundaries and the region throws rt::Cancelled (with
  /// per-thread completed-iteration counts) once a member observes it.
  /// Default-constructed = the region is not cancellable.
  CancelToken cancel_token;

  /// Region deadline in seconds since region start, on the backend's
  /// clock (host steady clock / sim virtual time). 0 = none. Like token
  /// cancellation, enforced cooperatively at chunk-claim boundaries —
  /// a single enormous chunk overstays the deadline unchecked.
  double deadline_s = 0.0;

  /// Chunk-boundary fault injection (delays / thrown exceptions). Empty
  /// (the default) = off with zero polling overhead.
  ChaosPlan chaos;

  /// Live progress observer (see rt::RegionObserver in rt/trace.hpp): the
  /// host backend attaches the region's TraceRecorder at launch so
  /// observer->snapshot() samples per-thread counters mid-region through
  /// wait-free seqlocks — workers never block for an observer. Requires
  /// record_trace (observed() sets it). Host backend only; the Sim
  /// backend ignores it (a virtual-time region has no meaningful "while
  /// it runs" for a real-time observer to sample).
  std::shared_ptr<RegionObserver> observer;

  /// Copy of this config with tracing switched on.
  ParallelConfig traced() const {
    ParallelConfig config = *this;
    config.record_trace = true;
    return config;
  }

  /// Copy of this config that polls `token` at chunk-claim boundaries.
  ParallelConfig cancellable(CancelToken token) const {
    util::require(token.valid(),
                  "ParallelConfig::cancellable: token is not connected to a "
                  "CancelSource (default-constructed tokens never fire)");
    ParallelConfig config = *this;
    config.cancel_token = std::move(token);
    return config;
  }

  /// Copy of this config with a region deadline of `seconds` (> 0, finite)
  /// on the backend's clock.
  ParallelConfig deadline(double seconds) const {
    util::require(std::isfinite(seconds) && seconds > 0.0,
                  "ParallelConfig::deadline: need a finite deadline > 0");
    ParallelConfig config = *this;
    config.deadline_s = seconds;
    return config;
  }

  /// Chrono-flavoured deadline: config.deadline(std::chrono::milliseconds(5)).
  template <class Rep, class Period>
  ParallelConfig deadline(std::chrono::duration<Rep, Period> duration) const {
    return deadline(
        std::chrono::duration_cast<std::chrono::duration<double>>(duration)
            .count());
  }

  /// Copy of this config with `plan` injected at chunk-claim boundaries.
  /// Validates the plan loudly up front.
  ParallelConfig with_chaos(ChaosPlan plan) const {
    plan.validate();
    ParallelConfig config = *this;
    config.chaos = plan;
    return config;
  }

  /// Copy of this config that publishes live per-thread progress to
  /// `observer` while the region runs (host backend). Implies tracing —
  /// the observer samples the trace recorder's wait-free counters.
  ParallelConfig observed(std::shared_ptr<RegionObserver> region_observer)
      const {
    util::require(region_observer != nullptr,
                  "ParallelConfig::observed: observer must not be null");
    ParallelConfig config = *this;
    config.observer = std::move(region_observer);
    config.record_trace = true;
    return config;
  }

  /// Copy of this config that bypasses the persistent worker pool and
  /// spawns fresh threads for the region (the pre-pool behaviour).
  ParallelConfig unpooled() const {
    ParallelConfig config = *this;
    config.use_pool = false;
    return config;
  }

  static ParallelConfig sim_pi(int num_threads = 4) {
    ParallelConfig config;
    config.num_threads = num_threads;
    config.backend = BackendKind::Sim;
    return config;
  }

  static ParallelConfig host(int num_threads = 4) {
    ParallelConfig config;
    config.num_threads = num_threads;
    config.backend = BackendKind::Host;
    return config;
  }
};

/// Outcome of one parallel region.
struct RunResult {
  /// Host wall-clock of the region, in seconds (both backends).
  double host_seconds = 0.0;

  /// Virtual-time report (Sim backend only).
  std::optional<sim::ExecutionReport> sim_report;

  /// Per-thread trace profile; only set when ParallelConfig::record_trace
  /// was on. Shared so RunResult stays cheap to copy.
  std::shared_ptr<const RunProfile> profile;

  /// Virtual time if simulated, host time otherwise.
  double elapsed_seconds() const {
    return sim_report ? sim_report->makespan_s : host_seconds;
  }
};

}  // namespace pblpar::rt
