#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rt/team.hpp"
#include "util/rng.hpp"

namespace pblpar::rt {

struct RunProfile;

namespace detail {

/// Shared flag behind a CancelSource/CancelToken pair. Heap-allocated and
/// reference-counted so tokens stay valid after the source is gone (a
/// destroyed source simply can never request cancellation any more).
struct CancelState {
  std::atomic<bool> requested{false};
};

/// Internal unwinding signal thrown at a chunk-claim boundary once the
/// region's governor fired. Caught by the backends and converted into
/// rt::Cancelled at the region join; never escapes to users.
struct CancelSignal {};

}  // namespace detail

/// Consumer end of a cancellation request: copied into ParallelConfig via
/// .cancellable() and polled by every team member at chunk-claim
/// boundaries. Default-constructed tokens are inert (never cancelled).
class CancelToken {
 public:
  CancelToken() = default;

  /// Whether this token is connected to a CancelSource at all.
  bool valid() const { return state_ != nullptr; }

  bool cancel_requested() const {
    return state_ != nullptr &&
           state_->requested.load(std::memory_order_acquire);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const detail::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const detail::CancelState> state_;
};

/// Owner end of a cancellation request. cancel() is thread-safe and may be
/// called from outside the region (that is the point: a watchdog, a UI
/// thread, a signal handler's deferred path). Cancellation is cooperative
/// and sticky — there is no un-cancel.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

  void cancel() { state_->requested.store(true, std::memory_order_release); }

  bool cancel_requested() const {
    return state_->requested.load(std::memory_order_acquire);
  }

  CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

/// What fired a region's cancellation.
enum class CancelCause {
  Token,     // CancelSource::cancel() was observed
  Deadline,  // the region ran past ParallelConfig::deadline()
};

std::string to_string(CancelCause cause);

/// Thrown by rt::parallel when a region was cancelled (token or deadline).
/// Carries per-thread completed-iteration counts — every iteration either
/// ran to completion or never started, because members only stop at
/// chunk-claim boundaries — so callers can salvage partial progress. When
/// the region was traced, the profile of the cancelled region (including
/// its CancelEvents) rides along.
class Cancelled : public std::runtime_error {
 public:
  Cancelled(CancelCause cause, std::vector<std::int64_t> completed,
            std::shared_ptr<const RunProfile> profile = nullptr);

  CancelCause cause() const noexcept { return cause_; }

  /// Worksharing-loop iterations each team member completed before it
  /// stopped, indexed by tid.
  const std::vector<std::int64_t>& completed_iterations() const noexcept {
    return completed_;
  }

  std::int64_t total_completed() const noexcept;

  /// Trace of the cancelled region; null unless record_trace was set.
  const std::shared_ptr<const RunProfile>& profile() const noexcept {
    return profile_;
  }

 private:
  CancelCause cause_;
  std::vector<std::int64_t> completed_;
  std::shared_ptr<const RunProfile> profile_;
};

/// Host-side counterpart of cluster::FaultPlan: seeded fault injection at
/// chunk-claim boundaries. Empty plan (the default) = no injection and no
/// overhead — the loop drivers skip all polling when nothing is armed.
/// Every draw comes from one deterministic xoshiro stream per team member
/// (derived from `seed` and the tid), so a plan replays bit-identically on
/// the Sim backend and statistically identically on the host.
struct ChaosPlan {
  /// Probability, per chunk claim, of stalling the claiming member for
  /// `delay_s` before it runs the chunk.
  double delay_probability = 0.0;
  double delay_s = 0.0;

  /// Probability, per chunk claim, of throwing ChaosInjected out of the
  /// member's body — exercising the same abort-and-drain path a real
  /// exception in user code takes.
  double throw_probability = 0.0;

  std::uint64_t seed = 1;

  bool empty() const {
    return delay_probability <= 0.0 && throw_probability <= 0.0;
  }

  /// Fail loudly on a malformed plan: probabilities must be in [0, 1] and
  /// delays finite and non-negative.
  void validate() const;
};

/// The exception a ChaosPlan's throw injection raises from a member body.
/// Deliberately a plain runtime_error subtype: the runtime must treat it
/// exactly like an exception thrown by user code.
class ChaosInjected : public std::runtime_error {
 public:
  ChaosInjected(int tid, std::uint64_t nth_claim);

  int tid() const noexcept { return tid_; }
  std::uint64_t nth_claim() const noexcept { return nth_claim_; }

 private:
  int tid_;
  std::uint64_t nth_claim_;
};

/// Per-region cancellation + chaos state shared by all team members.
/// Created by the backends only when something is armed (token, deadline
/// or chaos plan); TeamContext::governor() returns nullptr otherwise and
/// the loop drivers skip every poll — the unarmed hot path is untouched.
class RegionGovernor {
 public:
  /// Governor for a region, or nullptr when neither cancellation nor
  /// chaos is armed. `deadline_s` is seconds since region start on the
  /// backend's clock (host steady clock / sim virtual time); 0 = none.
  static std::unique_ptr<RegionGovernor> for_region(const CancelToken& token,
                                                    double deadline_s,
                                                    const ChaosPlan& chaos,
                                                    int num_threads);

  /// Poll at a chunk-claim boundary. Checks (in order) a prior fire by a
  /// peer, the token, and the deadline — any hit records a CancelEvent
  /// and throws detail::CancelSignal. Then rolls the chaos plan's dice:
  /// a throw draw records an InjectEvent and throws ChaosInjected; a
  /// delay draw records an InjectEvent and stalls via
  /// TeamContext::inject_delay.
  void at_claim(TeamContext& tc, int tid);

  /// Member `tid` finished a chunk of `count` iterations.
  void add_completed(int tid, std::int64_t count) {
    slots_[static_cast<std::size_t>(tid)].completed += count;
  }

  bool fired() const { return stop_.load(std::memory_order_acquire); }

  /// Only meaningful after fired(): what fired, and when on the backend
  /// clock.
  CancelCause cause() const { return cause_; }
  double fired_at_s() const { return fired_at_s_; }

  /// Per-tid completed-iteration counts. Only valid after every member of
  /// the region has stopped (the backends read it at the region join).
  std::vector<std::int64_t> completed_counts() const;

  /// Backend hook run once by the member that fires cancellation, before
  /// it unwinds — the host backend aborts the team barrier here so parked
  /// members drain; the Sim backend leaves it unset (the machine's own
  /// abort teardown wakes every virtual thread).
  std::function<void()> abort_team;

 private:
  RegionGovernor(const CancelToken& token, double deadline_s,
                 const ChaosPlan& chaos, int num_threads);

  /// First caller wins; peers observing stop_ afterwards just drain.
  void fire(CancelCause cause, double now);

  [[noreturn]] void throw_cancelled(TeamContext& tc, int tid);

  struct alignas(kCacheLineBytes) MemberSlot {
    std::int64_t completed = 0;    // owner-written; read after the join
    std::uint64_t claims = 0;      // chunk claims this member made
    util::Rng rng{1};              // this member's chaos stream
    bool cancel_recorded = false;  // one CancelEvent per member at most
  };

  CancelToken token_;
  double deadline_s_;
  ChaosPlan chaos_;
  bool chaos_armed_;
  std::vector<MemberSlot> slots_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> fire_claimed_{false};
  /// Written once by the fire() winner before stop_ is released; read by
  /// members after an acquire load of stop_ and by the backends after the
  /// region join.
  CancelCause cause_ = CancelCause::Token;
  double fired_at_s_ = 0.0;
};

}  // namespace pblpar::rt
