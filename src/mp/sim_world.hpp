#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "mp/chaos.hpp"
#include "mp/collectives.hpp"
#include "mp/comm.hpp"  // kAnySource/kAnyTag/RecvStatus shared with the host world
#include "mp/message.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace pblpar::mp {

/// A simulated cluster of single-board computers — the paper's future-
/// work direction ("extend the module to ... distributed memory using
/// Message Passing Interface (MPI)") made runnable: one virtual thread
/// per node, connected by an alpha-beta network model.
struct ClusterSpec {
  /// Per-node machine (clock, overheads). One rank runs per node, so the
  /// node's core count is ignored.
  sim::MachineSpec node = sim::MachineSpec::raspberry_pi_3bplus();

  /// One-way network latency (alpha), in microseconds. Default: small
  /// switched Ethernet between Pis.
  double net_latency_us = 200.0;

  /// Network bandwidth (1/beta), in megabytes per second. The Pi 3B+'s
  /// Ethernet tops out near 94 Mbit/s ~ 11 MB/s.
  double net_bandwidth_mb_s = 11.0;

  /// Per-message software overhead charged to the sender, microseconds.
  double send_overhead_us = 25.0;

  /// Segment size for pipelined tree collectives on this network. The
  /// simulated wire really does store-and-forward, so large payloads
  /// stream in segments; 0 would disable segmentation (as the host
  /// world does by default).
  std::size_t pipeline_segment_bytes = detail::kPipelineSegmentBytes;

  /// Seeded transport-fault injection (drop / delay / duplicate /
  /// reorder per link), applied as messages enter the destination inbox.
  /// Empty (the default) leaves the wire perfect. Because every draw
  /// comes from a per-link xoshiro stream and the simulator serializes
  /// rank execution, a chaotic Sim run replays bit-for-bit from the same
  /// seed.
  TransportChaos chaos;

  /// Transfer time for a message of `bytes`, excluding latency, seconds.
  double transfer_seconds(std::size_t bytes) const {
    return send_overhead_us * 1e-6 +
           static_cast<double>(bytes) / (net_bandwidth_mb_s * 1e6);
  }
};

/// Outcome of a cluster run.
struct ClusterReport {
  sim::ExecutionReport machine;
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  /// Outbound traffic per sending rank (indexed by rank; the totals
  /// above are their sums).
  std::vector<std::uint64_t> rank_messages;
  std::vector<std::uint64_t> rank_bytes;
};

namespace detail {

/// One node's inbox on the simulated network: messages carry their
/// arrival time (send completion + latency).
struct TimedMessage {
  RawMessage message;
  double arrival_s = 0.0;
};

/// Chaos state of one directed simulated link: seeded stream plus the
/// hold-one-back reorder slot (the held message keeps its original
/// arrival time, so a release after later traffic lands it out of order).
struct SimChaosLink {
  const LinkChaos* model = nullptr;  // null = link unarmed
  util::Rng rng{1};
  std::optional<TimedMessage> held;
};

struct SimWorldState {
  int size = 0;
  ClusterSpec spec;
  std::vector<std::deque<TimedMessage>> inboxes;
  std::vector<sim::MutexHandle> inbox_mutexes;
  std::vector<sim::ConditionHandle> inbox_conditions;
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  // Rank execution is serialized by the simulator, so plain counters
  // indexed by the sending rank are race-free.
  std::vector<std::uint64_t> rank_messages;
  std::vector<std::uint64_t> rank_bytes;
  std::vector<std::uint64_t> rank_chaos_dropped;
  std::vector<std::uint64_t> rank_chaos_duplicated;
  std::vector<std::uint64_t> rank_chaos_delayed;
  std::vector<std::uint64_t> rank_chaos_reordered;
  /// size*size link states, row-major by source; empty when unarmed.
  std::vector<SimChaosLink> chaos_links;
};

}  // namespace detail

/// One rank's endpoint on the simulated cluster. Same API surface as the
/// host-world Comm; timing comes from the machine model: sends charge the
/// software overhead plus bytes/bandwidth to the sender, and a receive
/// completes no earlier than send-completion + latency (the rank "waits
/// for the wire" in virtual time).
class SimComm {
 public:
  SimComm(detail::SimWorldState& world, sim::Context& ctx, int rank)
      : world_(&world), ctx_(&ctx), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size; }

  /// The simulated execution context of this rank's node (e.g. for
  /// charging local compute).
  sim::Context& context() { return *ctx_; }

  template <class T>
  void send(int dest, int tag, const T& value) {
    util::require(tag >= 0, "SimComm::send: user tags must be non-negative");
    send_raw(dest, tag, type_hash_of<T>(), Codec<T>::encode(value));
  }

  /// Move-of-ownership send (zero payload copies), as on the host Comm.
  template <class U>
  void send(int dest, int tag, std::vector<U>&& values) {
    util::require(tag >= 0, "SimComm::send: user tags must be non-negative");
    send_raw(dest, tag, type_hash_of<std::vector<U>>(),
             Codec<std::vector<U>>::encode(std::move(values)));
  }

  void send(int dest, int tag, std::string&& text) {
    util::require(tag >= 0, "SimComm::send: user tags must be non-negative");
    send_raw(dest, tag, type_hash_of<std::string>(),
             Codec<std::string>::encode(std::move(text)));
  }

  template <class T>
  T recv(int source = kAnySource, int tag = kAnyTag,
         RecvStatus* status = nullptr) {
    RawMessage message = recv_raw(source, tag);
    if (message.type_hash != type_hash_of<T>()) {
      throw MpTypeError(
          "SimComm::recv: matched message has a different payload type");
    }
    if (status != nullptr) {
      status->source = message.source;
      status->tag = message.tag;
    }
    return Codec<T>::decode(message.payload);
  }

  /// Zero-copy receive of a vector payload (see Comm::recv_view).
  template <class U>
  PayloadView<U> recv_view(int source = kAnySource, int tag = kAnyTag,
                           RecvStatus* status = nullptr) {
    RawMessage message = recv_raw(source, tag);
    if (message.type_hash != type_hash_of<std::vector<U>>()) {
      throw MpTypeError(
          "SimComm::recv_view: matched message has a different payload type");
    }
    if (status != nullptr) {
      status->source = message.source;
      status->tag = message.tag;
    }
    return PayloadView<U>(std::move(message.payload));
  }

  template <class T>
  T sendrecv(int dest, int send_tag, const T& value, int source,
             int recv_tag) {
    send(dest, send_tag, value);
    return recv<T>(source, recv_tag);
  }

  void barrier() { detail::barrier(*this); }

  template <class T>
  void bcast(T& value, int root = 0) {
    detail::bcast(*this, value, root);
  }

  void bcast_raw(Buffer& payload, int root = 0) {
    detail::bcast_raw(*this, payload, root);
  }

  template <class T, class Op>
  T reduce(const T& value, Op op, int root = 0) {
    return detail::reduce(*this, value, op, root);
  }

  template <class T, class Op>
  T allreduce(const T& value, Op op) {
    return detail::allreduce(*this, value, op);
  }

  template <class U, class Op>
  void reduce_elementwise(std::vector<U>& data, Op op, int root = 0) {
    detail::reduce_elementwise(*this, data, op, root);
  }

  template <class U, class Op>
  void allreduce_elementwise(std::vector<U>& data, Op op) {
    detail::allreduce_elementwise(*this, data, op);
  }

  template <class T>
  T scatter(const std::vector<T>& values, int root = 0) {
    return detail::scatter(*this, values, root);
  }

  Buffer scatter_raw(std::vector<Buffer> blobs, int root = 0) {
    return detail::scatter_raw(*this, std::move(blobs), root);
  }

  template <class T>
  std::vector<T> gather(const T& value, int root = 0) {
    return detail::gather(*this, value, root);
  }

  std::vector<Buffer> gather_raw(Buffer blob, int root = 0) {
    return detail::gather_raw(*this, std::move(blob), root);
  }

  template <class T>
  std::vector<T> allgather(const T& value) {
    return detail::allgather(*this, value);
  }

  /// Zero-copy allgather of vector payloads (see Comm::allgather_view).
  template <class U>
  std::vector<PayloadView<U>> allgather_view(std::vector<U>&& values) {
    return detail::allgather_view(*this, std::move(values));
  }

  template <class U, class Op>
  void ring_allreduce(std::vector<U>& data, Op op) {
    detail::ring_allreduce(*this, data, op);
  }

  std::vector<double> ring_allreduce_sum(std::vector<double> data) {
    return detail::ring_allreduce_sum(*this, std::move(data));
  }

  // --- raw transport (shared collective algorithms call these) ---------------

  /// Segment size for pipelined tree collectives, from the cluster spec.
  std::size_t pipeline_segment_bytes() const {
    return world_->spec.pipeline_segment_bytes;
  }

  void send_raw(int dest, int tag, std::size_t type_hash, Buffer payload);
  RawMessage recv_raw(int source, int tag);

  /// Outbound traffic of `rank` so far (default: this rank), in virtual
  /// time; mirrors Comm::wire_stats.
  WireStats wire_stats(int rank = -1) const;

  /// Non-throwing timed receive in *virtual* time: true and *out filled
  /// when a match shows up within `timeout_s` virtual seconds, false
  /// once the deadline passes with no match. A zero (or negative,
  /// clamped to zero) timeout is a poll: the inbox is scanned once and
  /// the rank yields exactly once before timing out, so polling costs
  /// one deterministic scheduler step. A message matched just before
  /// the deadline is still delivered (its remaining wire time is
  /// waited out even past the deadline).
  bool recv_raw_timed(int source, int tag, double timeout_s,
                      RawMessage* out);

 private:
  detail::SimWorldState* world_;
  sim::Context* ctx_;
  int rank_;
};

/// Run `rank_main` once per rank on a simulated cluster of `num_ranks`
/// nodes. Deterministic; missing messages surface as the machine's
/// DeadlockError rather than a timeout.
class SimWorld {
 public:
  static ClusterReport run(int num_ranks,
                           const std::function<void(SimComm&)>& rank_main,
                           ClusterSpec spec = {});
};

}  // namespace pblpar::mp
