#include "mp/comm.hpp"

namespace pblpar::mp {

void Comm::send_raw(int dest, int tag, std::size_t type_hash,
                    std::vector<std::byte> payload) {
  util::require(dest >= 0 && dest < size(),
                "Comm::send: destination rank out of range");
  RawMessage message;
  message.source = rank_;
  message.tag = tag;
  message.type_hash = type_hash;
  message.payload = std::move(payload);
  world_->mailboxes[static_cast<std::size_t>(dest)]->push(std::move(message));
}

RawMessage Comm::recv_raw(int source, int tag) {
  util::require(source == kAnySource || (source >= 0 && source < size()),
                "Comm::recv: source rank out of range");
  return world_->mailboxes[static_cast<std::size_t>(rank_)]->pop_matching(
      source, tag);
}

bool Comm::recv_raw_timed(int source, int tag, double timeout_s,
                          RawMessage* out) {
  util::require(source == kAnySource || (source >= 0 && source < size()),
                "Comm::recv: source rank out of range");
  return world_->mailboxes[static_cast<std::size_t>(rank_)]
      ->pop_matching_timed(source, tag, timeout_s, out);
}

}  // namespace pblpar::mp
