#include "mp/comm.hpp"

#include <chrono>
#include <thread>

namespace pblpar::mp {

void Comm::send_raw(int dest, int tag, std::size_t type_hash,
                    Buffer payload) {
  util::require(dest >= 0 && dest < size(),
                "Comm::send: destination rank out of range");
  detail::WireCounters& wire = world_->wire[static_cast<std::size_t>(rank_)];
  wire.messages.fetch_add(1, std::memory_order_relaxed);
  wire.bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  RawMessage message;
  message.source = rank_;
  message.tag = tag;
  message.type_hash = type_hash;
  message.payload = std::move(payload);

  Mailbox& mailbox = *world_->mailboxes[static_cast<std::size_t>(dest)];
  if (world_->chaos_links.empty()) {
    mailbox.push(std::move(message));
    return;
  }
  // Chaos is armed for this world. Link (rank_, dest) is only touched by
  // this rank's thread, so the stream and hold slot need no locks.
  detail::ChaosLinkState& link =
      world_->chaos_links[static_cast<std::size_t>(rank_) *
                              static_cast<std::size_t>(size()) +
                          static_cast<std::size_t>(dest)];
  if (link.model == nullptr) {
    mailbox.push(std::move(message));
    return;
  }
  const ChaosDecision decision = detail::draw_chaos(*link.model, link.rng);
  if (decision.drop) {
    wire.chaos_dropped.fetch_add(1, std::memory_order_relaxed);
    return;  // a held message, if any, stays held for the next send
  }
  if (decision.reorder && !link.held.has_value()) {
    // Hold this message back; it is released after the *next* message on
    // this link goes out, swapping their delivery order.
    wire.chaos_reordered.fetch_add(1, std::memory_order_relaxed);
    link.held = std::move(message);
    return;
  }
  if (decision.delay_s > 0.0) {
    wire.chaos_delayed.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(decision.delay_s));
  }
  if (decision.duplicate) {
    wire.chaos_duplicated.fetch_add(1, std::memory_order_relaxed);
    RawMessage ghost;
    ghost.source = message.source;
    ghost.tag = message.tag;
    ghost.type_hash = message.type_hash;
    ghost.payload = message.payload;  // refcounted share, no byte copy
    mailbox.push(std::move(message));
    mailbox.push(std::move(ghost));
  } else {
    mailbox.push(std::move(message));
  }
  if (link.held.has_value()) {
    mailbox.push(std::move(*link.held));
    link.held.reset();
  }
}

RawMessage Comm::recv_raw(int source, int tag) {
  util::require(source == kAnySource || (source >= 0 && source < size()),
                "Comm::recv: source rank out of range");
  return world_->mailboxes[static_cast<std::size_t>(rank_)]->pop_matching(
      source, tag);
}

bool Comm::recv_raw_timed(int source, int tag, double timeout_s,
                          RawMessage* out) {
  util::require(source == kAnySource || (source >= 0 && source < size()),
                "Comm::recv: source rank out of range");
  return world_->mailboxes[static_cast<std::size_t>(rank_)]
      ->pop_matching_timed(source, tag, timeout_s, out);
}

WireStats Comm::wire_stats(int rank) const {
  const int target = rank < 0 ? rank_ : rank;
  util::require(target >= 0 && target < size(),
                "Comm::wire_stats: rank out of range");
  const detail::WireCounters& wire =
      world_->wire[static_cast<std::size_t>(target)];
  WireStats stats;
  stats.messages = wire.messages.load(std::memory_order_relaxed);
  stats.bytes = wire.bytes.load(std::memory_order_relaxed);
  stats.chaos_dropped = wire.chaos_dropped.load(std::memory_order_relaxed);
  stats.chaos_duplicated =
      wire.chaos_duplicated.load(std::memory_order_relaxed);
  stats.chaos_delayed = wire.chaos_delayed.load(std::memory_order_relaxed);
  stats.chaos_reordered =
      wire.chaos_reordered.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pblpar::mp
