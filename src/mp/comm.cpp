#include "mp/comm.hpp"

namespace pblpar::mp {

void Comm::send_raw(int dest, int tag, std::size_t type_hash,
                    Buffer payload) {
  util::require(dest >= 0 && dest < size(),
                "Comm::send: destination rank out of range");
  detail::WireCounters& wire = world_->wire[static_cast<std::size_t>(rank_)];
  wire.messages.fetch_add(1, std::memory_order_relaxed);
  wire.bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  RawMessage message;
  message.source = rank_;
  message.tag = tag;
  message.type_hash = type_hash;
  message.payload = std::move(payload);
  world_->mailboxes[static_cast<std::size_t>(dest)]->push(std::move(message));
}

RawMessage Comm::recv_raw(int source, int tag) {
  util::require(source == kAnySource || (source >= 0 && source < size()),
                "Comm::recv: source rank out of range");
  return world_->mailboxes[static_cast<std::size_t>(rank_)]->pop_matching(
      source, tag);
}

bool Comm::recv_raw_timed(int source, int tag, double timeout_s,
                          RawMessage* out) {
  util::require(source == kAnySource || (source >= 0 && source < size()),
                "Comm::recv: source rank out of range");
  return world_->mailboxes[static_cast<std::size_t>(rank_)]
      ->pop_matching_timed(source, tag, timeout_s, out);
}

WireStats Comm::wire_stats(int rank) const {
  const int target = rank < 0 ? rank_ : rank;
  util::require(target >= 0 && target < size(),
                "Comm::wire_stats: rank out of range");
  const detail::WireCounters& wire =
      world_->wire[static_cast<std::size_t>(target)];
  WireStats stats;
  stats.messages = wire.messages.load(std::memory_order_relaxed);
  stats.bytes = wire.bytes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pblpar::mp
