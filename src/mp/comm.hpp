#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mp/chaos.hpp"
#include "mp/collectives.hpp"
#include "mp/mailbox.hpp"
#include "mp/message.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::mp {

/// Wildcards for Comm::recv.
constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Source and tag of a received message (MPI_Status equivalent).
struct RecvStatus {
  int source = -1;
  int tag = -1;
};

/// Snapshot of one rank's outbound wire traffic (messages sent and
/// payload bytes shipped), surfaced per rank by Comm::wire_stats and in
/// the cluster profile schema. The chaos_* counters record what an armed
/// TransportChaos plan injected on this rank's outbound links; all zero
/// when chaos is off.
struct WireStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t chaos_dropped = 0;
  std::uint64_t chaos_duplicated = 0;
  std::uint64_t chaos_delayed = 0;
  std::uint64_t chaos_reordered = 0;
};

namespace detail {

/// Per-rank outbound counters, indexed by the *sending* rank so the
/// relaxed increments never contend across ranks.
struct alignas(64) WireCounters {
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> chaos_dropped{0};
  std::atomic<std::uint64_t> chaos_duplicated{0};
  std::atomic<std::uint64_t> chaos_delayed{0};
  std::atomic<std::uint64_t> chaos_reordered{0};
};

/// Chaos state of one directed link (source, dest): its seeded stream and
/// the hold-one-back reorder slot. The link (s, d) is only ever touched
/// by sending rank s's thread, so no synchronization is needed.
struct ChaosLinkState {
  const LinkChaos* model = nullptr;  // null = link unarmed, zero overhead
  util::Rng rng{1};
  std::optional<RawMessage> held;
};

/// Shared state of one world: every rank's mailbox plus the abort flag.
struct WorldState {
  explicit WorldState(int size, double timeout_s,
                      std::size_t pipeline_segment_bytes = 0,
                      TransportChaos chaos_plan = {})
      : size(size),
        pipeline_segment_bytes(pipeline_segment_bytes),
        chaos(std::move(chaos_plan)) {
    mailboxes.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      mailboxes.push_back(std::make_unique<Mailbox>(abort, timeout_s, r));
    }
    wire = std::make_unique<WireCounters[]>(static_cast<std::size_t>(size));
    if (chaos.armed()) {
      chaos.validate();
      chaos_links.resize(static_cast<std::size_t>(size) *
                         static_cast<std::size_t>(size));
      for (int s = 0; s < size; ++s) {
        for (int d = 0; d < size; ++d) {
          ChaosLinkState& link =
              chaos_links[static_cast<std::size_t>(s) *
                              static_cast<std::size_t>(size) +
                          static_cast<std::size_t>(d)];
          const LinkChaos& model = chaos.link_for(s, d);
          if (!model.empty()) {
            link.model = &model;
            link.rng = chaos_link_rng(chaos.seed, size, s, d);
          }
        }
      }
    }
  }
  int size;
  std::size_t pipeline_segment_bytes;
  TransportChaos chaos;
  AbortState abort;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::unique_ptr<WireCounters[]> wire;
  /// size*size link states, row-major by source; empty when unarmed.
  std::vector<ChaosLinkState> chaos_links;
};

}  // namespace detail

/// A communicator endpoint: one rank's handle on the world (the TeachMPI
/// analogue of MPI_COMM_WORLD seen from one process).
///
/// Point-to-point sends are buffered (never block); receives block until
/// a matching message arrives or the world's timeout expires. Collectives
/// must be called by every rank, in the same order; the algorithms live
/// in mp/collectives.hpp and are shared with the simulated cluster.
class Comm {
 public:
  Comm(detail::WorldState& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size; }

  // --- point to point -------------------------------------------------------

  template <class T>
  void send(int dest, int tag, const T& value) {
    util::require(tag >= 0, "Comm::send: user tags must be non-negative");
    send_raw(dest, tag, type_hash_of<T>(), Codec<T>::encode(value));
  }

  /// Move-of-ownership send: the vector's storage becomes the payload,
  /// no bytes are copied.
  template <class U>
  void send(int dest, int tag, std::vector<U>&& values) {
    util::require(tag >= 0, "Comm::send: user tags must be non-negative");
    send_raw(dest, tag, type_hash_of<std::vector<U>>(),
             Codec<std::vector<U>>::encode(std::move(values)));
  }

  void send(int dest, int tag, std::string&& text) {
    util::require(tag >= 0, "Comm::send: user tags must be non-negative");
    send_raw(dest, tag, type_hash_of<std::string>(),
             Codec<std::string>::encode(std::move(text)));
  }

  template <class T>
  T recv(int source = kAnySource, int tag = kAnyTag,
         RecvStatus* status = nullptr) {
    RawMessage message = recv_raw(source, tag);
    if (message.type_hash != type_hash_of<T>()) {
      throw MpTypeError(
          "Comm::recv: matched message has a different payload type");
    }
    if (status != nullptr) {
      status->source = message.source;
      status->tag = message.tag;
    }
    return Codec<T>::decode(message.payload);
  }

  /// Zero-copy receive of a vector payload: the returned view owns the
  /// message buffer and exposes the elements in place (no decode copy).
  template <class U>
  PayloadView<U> recv_view(int source = kAnySource, int tag = kAnyTag,
                           RecvStatus* status = nullptr) {
    RawMessage message = recv_raw(source, tag);
    if (message.type_hash != type_hash_of<std::vector<U>>()) {
      throw MpTypeError(
          "Comm::recv_view: matched message has a different payload type");
    }
    if (status != nullptr) {
      status->source = message.source;
      status->tag = message.tag;
    }
    return PayloadView<U>(std::move(message.payload));
  }

  /// Combined shift: buffered send then blocking receive, so ring shifts
  /// cannot deadlock.
  template <class T>
  T sendrecv(int dest, int send_tag, const T& value, int source,
             int recv_tag) {
    send(dest, send_tag, value);
    return recv<T>(source, recv_tag);
  }

  // --- collectives ------------------------------------------------------------

  void barrier() { detail::barrier(*this); }

  template <class T>
  void bcast(T& value, int root = 0) {
    detail::bcast(*this, value, root);
  }

  /// Raw payload broadcast: root's buffer in, every rank's buffer out.
  void bcast_raw(Buffer& payload, int root = 0) {
    detail::bcast_raw(*this, payload, root);
  }

  template <class T, class Op>
  T reduce(const T& value, Op op, int root = 0) {
    return detail::reduce(*this, value, op, root);
  }

  template <class T, class Op>
  T allreduce(const T& value, Op op) {
    return detail::allreduce(*this, value, op);
  }

  /// In-place element-wise reduction of equal-length vectors, pipelined
  /// in segments above the pipeline threshold. Root's vector holds the
  /// result.
  template <class U, class Op>
  void reduce_elementwise(std::vector<U>& data, Op op, int root = 0) {
    detail::reduce_elementwise(*this, data, op, root);
  }

  template <class U, class Op>
  void allreduce_elementwise(std::vector<U>& data, Op op) {
    detail::allreduce_elementwise(*this, data, op);
  }

  template <class T>
  T scatter(const std::vector<T>& values, int root = 0) {
    return detail::scatter(*this, values, root);
  }

  /// Zero-copy scatter of pre-built payload blobs (one Buffer per rank).
  Buffer scatter_raw(std::vector<Buffer> blobs, int root = 0) {
    return detail::scatter_raw(*this, std::move(blobs), root);
  }

  template <class T>
  std::vector<T> gather(const T& value, int root = 0) {
    return detail::gather(*this, value, root);
  }

  /// Zero-copy gather of payload blobs; non-root ranks return empty.
  std::vector<Buffer> gather_raw(Buffer blob, int root = 0) {
    return detail::gather_raw(*this, std::move(blob), root);
  }

  template <class T>
  std::vector<T> allgather(const T& value) {
    return detail::allgather(*this, value);
  }

  /// Zero-copy allgather: move this rank's vector in, get a read-only
  /// view of every rank's elements back. All views alias the one packed
  /// broadcast frame — no per-rank decode copies.
  template <class U>
  std::vector<PayloadView<U>> allgather_view(std::vector<U>&& values) {
    return detail::allgather_view(*this, std::move(values));
  }

  /// In-place ring allreduce for any element count (uneven segments) and
  /// any trivially copyable element.
  template <class U, class Op>
  void ring_allreduce(std::vector<U>& data, Op op) {
    detail::ring_allreduce(*this, data, op);
  }

  std::vector<double> ring_allreduce_sum(std::vector<double> data) {
    return detail::ring_allreduce_sum(*this, std::move(data));
  }

  // --- raw transport (used by the shared collective algorithms) -----------------

  /// Segment size for pipelined tree collectives; 0 means "never
  /// segment" (the host default — frames are refcounted in shared
  /// memory, so forwarding a whole payload is free and splitting it
  /// only adds assembly copies).
  std::size_t pipeline_segment_bytes() const {
    return world_->pipeline_segment_bytes;
  }

  void send_raw(int dest, int tag, std::size_t type_hash, Buffer payload);
  RawMessage recv_raw(int source, int tag);

  /// Non-throwing timed receive: true and *out filled when a match
  /// arrives within `timeout_s`, false on timeout. A zero (or negative)
  /// timeout is a poll: the mailbox is scanned once and the call
  /// returns immediately, never blocking. Used by pollers (the cluster
  /// master, a worker's cancel check) that must keep running while
  /// peers are silent.
  bool recv_raw_timed(int source, int tag, double timeout_s,
                      RawMessage* out);

  /// Outbound traffic of `rank` so far (default: this rank). Counters
  /// are world-wide, so the master can snapshot every rank's totals.
  WireStats wire_stats(int rank = -1) const;

 private:
  detail::WorldState* world_;
  int rank_;
};

}  // namespace pblpar::mp
