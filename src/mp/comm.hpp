#pragma once

#include <memory>
#include <vector>

#include "mp/collectives.hpp"
#include "mp/mailbox.hpp"
#include "mp/message.hpp"
#include "util/error.hpp"

namespace pblpar::mp {

/// Wildcards for Comm::recv.
constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

/// Source and tag of a received message (MPI_Status equivalent).
struct RecvStatus {
  int source = -1;
  int tag = -1;
};

namespace detail {

/// Shared state of one world: every rank's mailbox plus the abort flag.
struct WorldState {
  explicit WorldState(int size, double timeout_s) : size(size) {
    mailboxes.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      mailboxes.push_back(std::make_unique<Mailbox>(abort, timeout_s, r));
    }
  }
  int size;
  AbortState abort;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
};

}  // namespace detail

/// A communicator endpoint: one rank's handle on the world (the TeachMPI
/// analogue of MPI_COMM_WORLD seen from one process).
///
/// Point-to-point sends are buffered (never block); receives block until
/// a matching message arrives or the world's timeout expires. Collectives
/// must be called by every rank, in the same order; the algorithms live
/// in mp/collectives.hpp and are shared with the simulated cluster.
class Comm {
 public:
  Comm(detail::WorldState& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size; }

  // --- point to point -------------------------------------------------------

  template <class T>
  void send(int dest, int tag, const T& value) {
    util::require(tag >= 0, "Comm::send: user tags must be non-negative");
    send_raw(dest, tag, type_hash_of<T>(), Codec<T>::encode(value));
  }

  template <class T>
  T recv(int source = kAnySource, int tag = kAnyTag,
         RecvStatus* status = nullptr) {
    RawMessage message = recv_raw(source, tag);
    if (message.type_hash != type_hash_of<T>()) {
      throw MpTypeError(
          "Comm::recv: matched message has a different payload type");
    }
    if (status != nullptr) {
      status->source = message.source;
      status->tag = message.tag;
    }
    return Codec<T>::decode(message.payload);
  }

  /// Combined shift: buffered send then blocking receive, so ring shifts
  /// cannot deadlock.
  template <class T>
  T sendrecv(int dest, int send_tag, const T& value, int source,
             int recv_tag) {
    send(dest, send_tag, value);
    return recv<T>(source, recv_tag);
  }

  // --- collectives ------------------------------------------------------------

  void barrier() { detail::barrier(*this); }

  template <class T>
  void bcast(T& value, int root = 0) {
    detail::bcast(*this, value, root);
  }

  template <class T, class Op>
  T reduce(const T& value, Op op, int root = 0) {
    return detail::reduce(*this, value, op, root);
  }

  template <class T, class Op>
  T allreduce(const T& value, Op op) {
    return detail::allreduce(*this, value, op);
  }

  template <class T>
  T scatter(const std::vector<T>& values, int root = 0) {
    return detail::scatter(*this, values, root);
  }

  template <class T>
  std::vector<T> gather(const T& value, int root = 0) {
    return detail::gather(*this, value, root);
  }

  template <class T>
  std::vector<T> allgather(const T& value) {
    return detail::allgather(*this, value);
  }

  std::vector<double> ring_allreduce_sum(std::vector<double> data) {
    return detail::ring_allreduce_sum(*this, std::move(data));
  }

  // --- raw transport (used by the shared collective algorithms) -----------------

  void send_raw(int dest, int tag, std::size_t type_hash,
                std::vector<std::byte> payload);
  RawMessage recv_raw(int source, int tag);

  /// Non-throwing timed receive: true and *out filled when a match
  /// arrives within `timeout_s`, false on timeout. A zero (or negative)
  /// timeout is a poll: the mailbox is scanned once and the call
  /// returns immediately, never blocking. Used by pollers (the cluster
  /// master, a worker's cancel check) that must keep running while
  /// peers are silent.
  bool recv_raw_timed(int source, int tag, double timeout_s,
                      RawMessage* out);

 private:
  detail::WorldState* world_;
  int rank_;
};

}  // namespace pblpar::mp
