#include "mp/world.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace pblpar::mp {

void World::run(int num_ranks, const std::function<void(Comm&)>& rank_main,
                WorldOptions options) {
  util::require(num_ranks >= 1, "World::run: need at least one rank");
  util::require(rank_main != nullptr, "World::run: rank body must be callable");
  util::require(options.recv_timeout_s > 0.0,
                "World::run: receive timeout must be positive");

  detail::WorldState state(num_ranks, options.recv_timeout_s,
                           options.pipeline_segment_bytes,
                           std::move(options.chaos));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks));

  {
    std::vector<std::jthread> ranks;
    ranks.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      ranks.emplace_back([&state, &errors, &rank_main, r] {
        Comm comm(state, r);
        try {
          rank_main(comm);
        } catch (const WorldAborted&) {
          // Torn down because another rank failed.
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          state.abort.aborted.store(true);
          for (auto& mailbox : state.mailboxes) {
            mailbox->interrupt();
          }
        }
      });
    }
  }  // all ranks join

  for (const std::exception_ptr& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
}

}  // namespace pblpar::mp
