#include "mp/sim_world.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pblpar::mp {

namespace {

bool matches(const RawMessage& message, int source, int tag) {
  return (source == kAnySource || message.source == source) &&
         (tag == kAnyTag || message.tag == tag);
}

}  // namespace

void SimComm::send_raw(int dest, int tag, std::size_t type_hash,
                       Buffer payload) {
  util::require(dest >= 0 && dest < size(),
                "SimComm::send: destination rank out of range");

  // The sender pays the software overhead plus the time to push the
  // bytes onto the wire (even when chaos then eats the message: the
  // sender cannot know the wire lost it).
  const std::size_t bytes = payload.size();
  ctx_->compute(ctx_->spec().us_to_ops(
      world_->spec.transfer_seconds(bytes) * 1e6));

  detail::TimedMessage timed;
  timed.message.source = rank_;
  timed.message.tag = tag;
  timed.message.type_hash = type_hash;
  timed.message.payload = std::move(payload);
  timed.arrival_s = ctx_->now() + world_->spec.net_latency_us * 1e-6;

  const auto sender = static_cast<std::size_t>(rank_);
  world_->messages += 1;
  world_->payload_bytes += bytes;
  world_->rank_messages[sender] += 1;
  world_->rank_bytes[sender] += bytes;

  detail::SimChaosLink* link = nullptr;
  if (!world_->chaos_links.empty()) {
    detail::SimChaosLink& candidate =
        world_->chaos_links[sender * static_cast<std::size_t>(size()) +
                            static_cast<std::size_t>(dest)];
    if (candidate.model != nullptr) {
      link = &candidate;
    }
  }

  detail::TimedMessage ghost;
  bool have_ghost = false;
  if (link != nullptr) {
    const ChaosDecision decision =
        detail::draw_chaos(*link->model, link->rng);
    if (decision.drop) {
      world_->rank_chaos_dropped[sender] += 1;
      return;  // a held message, if any, stays held for the next send
    }
    if (decision.reorder && !link->held.has_value()) {
      world_->rank_chaos_reordered[sender] += 1;
      link->held = std::move(timed);
      return;
    }
    if (decision.delay_s > 0.0) {
      world_->rank_chaos_delayed[sender] += 1;
      timed.arrival_s += decision.delay_s;
    }
    if (decision.duplicate) {
      world_->rank_chaos_duplicated[sender] += 1;
      ghost.message.source = timed.message.source;
      ghost.message.tag = timed.message.tag;
      ghost.message.type_hash = timed.message.type_hash;
      ghost.message.payload = timed.message.payload;  // refcounted share
      ghost.arrival_s = timed.arrival_s;
      have_ghost = true;
    }
  }

  sim::ScopedLock lock(
      *ctx_, world_->inbox_mutexes[static_cast<std::size_t>(dest)]);
  auto& inbox = world_->inboxes[static_cast<std::size_t>(dest)];
  inbox.push_back(std::move(timed));
  if (have_ghost) {
    inbox.push_back(std::move(ghost));
  }
  if (link != nullptr && link->held.has_value()) {
    inbox.push_back(std::move(*link->held));
    link->held.reset();
  }
  ctx_->notify_all(
      world_->inbox_conditions[static_cast<std::size_t>(dest)]);
}

WireStats SimComm::wire_stats(int rank) const {
  const int target = rank < 0 ? rank_ : rank;
  util::require(target >= 0 && target < size(),
                "SimComm::wire_stats: rank out of range");
  const auto index = static_cast<std::size_t>(target);
  WireStats stats;
  stats.messages = world_->rank_messages[index];
  stats.bytes = world_->rank_bytes[index];
  stats.chaos_dropped = world_->rank_chaos_dropped[index];
  stats.chaos_duplicated = world_->rank_chaos_duplicated[index];
  stats.chaos_delayed = world_->rank_chaos_delayed[index];
  stats.chaos_reordered = world_->rank_chaos_reordered[index];
  return stats;
}

RawMessage SimComm::recv_raw(int source, int tag) {
  util::require(source == kAnySource || (source >= 0 && source < size()),
                "SimComm::recv: source rank out of range");
  const auto index = static_cast<std::size_t>(rank_);
  auto& inbox = world_->inboxes[index];
  const sim::MutexHandle mutex = world_->inbox_mutexes[index];
  const sim::ConditionHandle condition = world_->inbox_conditions[index];

  ctx_->lock(mutex);
  for (;;) {
    for (auto it = inbox.begin(); it != inbox.end(); ++it) {
      if (matches(it->message, source, tag)) {
        detail::TimedMessage timed = std::move(*it);
        inbox.erase(it);
        ctx_->unlock(mutex);
        // A message cannot be consumed before it arrives: if we matched
        // it while it is still in flight, wait out the remaining wire
        // time in virtual time.
        const double remaining_s = timed.arrival_s - ctx_->now();
        if (remaining_s > 0.0) {
          ctx_->compute(ctx_->spec().us_to_ops(remaining_s * 1e6));
        }
        return std::move(timed.message);
      }
    }
    ctx_->wait(condition, mutex);
  }
}

bool SimComm::recv_raw_timed(int source, int tag, double timeout_s,
                             RawMessage* out) {
  util::require(source == kAnySource || (source >= 0 && source < size()),
                "SimComm::recv: source rank out of range");
  const auto index = static_cast<std::size_t>(rank_);
  auto& inbox = world_->inboxes[index];
  const sim::MutexHandle mutex = world_->inbox_mutexes[index];
  const sim::ConditionHandle condition = world_->inbox_conditions[index];
  // Zero (or negative, clamped) timeout = a poll: scan the inbox once,
  // then wait_until with a past deadline yields and times out at once.
  const double deadline_s = ctx_->now() + std::max(timeout_s, 0.0);

  ctx_->lock(mutex);
  for (;;) {
    for (auto it = inbox.begin(); it != inbox.end(); ++it) {
      if (matches(it->message, source, tag)) {
        detail::TimedMessage timed = std::move(*it);
        inbox.erase(it);
        ctx_->unlock(mutex);
        const double remaining_s = timed.arrival_s - ctx_->now();
        if (remaining_s > 0.0) {
          ctx_->compute(ctx_->spec().us_to_ops(remaining_s * 1e6));
        }
        *out = std::move(timed.message);
        return true;
      }
    }
    if (!ctx_->wait_until(condition, mutex, deadline_s)) {
      ctx_->unlock(mutex);
      return false;
    }
  }
}

ClusterReport SimWorld::run(int num_ranks,
                            const std::function<void(SimComm&)>& rank_main,
                            ClusterSpec spec) {
  util::require(num_ranks >= 1, "SimWorld::run: need at least one rank");
  util::require(rank_main != nullptr,
                "SimWorld::run: rank body must be callable");
  util::require(spec.net_bandwidth_mb_s > 0.0,
                "SimWorld::run: bandwidth must be positive");

  // One rank per node: model the cluster as num_ranks independent cores
  // with no shared-memory contention between them.
  sim::MachineSpec machine_spec = spec.node;
  machine_spec.name =
      "pi-cluster-" + std::to_string(num_ranks) + "node";
  machine_spec.cores = num_ranks;
  machine_spec.mem_contention_beta = 0.0;
  machine_spec.oversub_penalty = 0.0;
  sim::Machine machine(machine_spec);

  detail::SimWorldState state;
  state.size = num_ranks;
  state.spec = spec;
  state.inboxes.resize(static_cast<std::size_t>(num_ranks));
  state.rank_messages.assign(static_cast<std::size_t>(num_ranks), 0);
  state.rank_bytes.assign(static_cast<std::size_t>(num_ranks), 0);
  state.rank_chaos_dropped.assign(static_cast<std::size_t>(num_ranks), 0);
  state.rank_chaos_duplicated.assign(static_cast<std::size_t>(num_ranks), 0);
  state.rank_chaos_delayed.assign(static_cast<std::size_t>(num_ranks), 0);
  state.rank_chaos_reordered.assign(static_cast<std::size_t>(num_ranks), 0);
  for (int r = 0; r < num_ranks; ++r) {
    state.inbox_mutexes.push_back(machine.make_mutex());
    state.inbox_conditions.push_back(machine.make_condition());
  }
  if (state.spec.chaos.armed()) {
    state.spec.chaos.validate();
    state.chaos_links.resize(static_cast<std::size_t>(num_ranks) *
                             static_cast<std::size_t>(num_ranks));
    for (int s = 0; s < num_ranks; ++s) {
      for (int d = 0; d < num_ranks; ++d) {
        detail::SimChaosLink& link =
            state.chaos_links[static_cast<std::size_t>(s) *
                                  static_cast<std::size_t>(num_ranks) +
                              static_cast<std::size_t>(d)];
        const LinkChaos& model = state.spec.chaos.link_for(s, d);
        if (!model.empty()) {
          link.model = &model;
          link.rng = detail::chaos_link_rng(state.spec.chaos.seed,
                                            num_ranks, s, d);
        }
      }
    }
  }

  ClusterReport report;
  report.machine = machine.run([&](sim::Context& root) {
    std::vector<sim::ThreadHandle> ranks;
    for (int r = 1; r < num_ranks; ++r) {
      ranks.push_back(root.spawn([&state, &rank_main, r](sim::Context& ctx) {
        SimComm comm(state, ctx, r);
        rank_main(comm);
      }));
    }
    SimComm comm(state, root, 0);
    rank_main(comm);
    for (const sim::ThreadHandle rank : ranks) {
      root.join(rank);
    }
  });
  report.messages = state.messages;
  report.payload_bytes = state.payload_bytes;
  report.rank_messages = std::move(state.rank_messages);
  report.rank_bytes = std::move(state.rank_bytes);
  return report;
}

}  // namespace pblpar::mp
