#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "mp/buffer.hpp"
#include "mp/message.hpp"
#include "util/error.hpp"

namespace pblpar::mp::detail {

// Internal collective tags. kAnyTag is -1, so internal tags start at -2;
// user tags must be non-negative.
constexpr int kTagBarrierUp = -2;
constexpr int kTagBarrierDown = -3;
constexpr int kTagBcast = -4;
constexpr int kTagReduce = -5;
constexpr int kTagScatter = -6;
constexpr int kTagGather = -7;
constexpr int kTagRingA = -8;
constexpr int kTagRingB = -9;

/// Default segment size for pipelined tree collectives on a *network*
/// transport: payloads above this travel as segments so a deep tree
/// streams instead of store-and-forwarding whole payloads hop by hop.
/// The segment size is a transport property (pipeline_segment_bytes()):
/// SimComm defaults to this value because its alpha-beta network really
/// does store-and-forward; the host Comm defaults to "never segment",
/// because a host frame is a refcounted pointer — forwarding the whole
/// payload is free and splitting it only adds assembly copies.
constexpr std::size_t kPipelineSegmentBytes = std::size_t{256} << 10;

/// Transports report 0 for "never segment"; normalize that to a segment
/// size no payload can exceed.
inline std::size_t effective_segment_bytes(std::size_t seg) {
  return seg == 0 ? std::numeric_limits<std::size_t>::max() : seg;
}

/// Frame markers for the segmented protocol, carried in the message's
/// type_hash field: a header frame announces the total byte count, then
/// the segments follow on the same (source, tag) FIFO.
struct SegmentHeaderFrame {};
struct SegmentFrame {};

inline std::size_t header_hash() { return type_hash_of<SegmentHeaderFrame>(); }
inline std::size_t segment_hash() { return type_hash_of<SegmentFrame>(); }
inline std::size_t raw_bytes_hash() { return type_hash_of<Buffer>(); }

inline std::size_t segment_count(std::size_t bytes, std::size_t seg) {
  return bytes <= seg ? 1 : (bytes + seg - 1) / seg;
}

/// The collective algorithms, generic over a transport endpoint with
///   int rank(); int size();
///   std::size_t pipeline_segment_bytes();   // 0 = never segment
///   void send_raw(int dest, int tag, std::size_t type_hash,
///                 Buffer payload);
///   RawMessage recv_raw(int source, int tag);
/// Both the host world (mp::Comm) and the simulated cluster
/// (mp::SimComm) instantiate them, so the algorithms and their tests are
/// shared.

inline void check_root(int root, int size) {
  util::require(root >= 0 && root < size, "collective: root rank out of range");
}

inline int relative_rank(int rank, int root, int size) {
  return (rank - root + size) % size;
}

inline int absolute_rank(int relative, int root, int size) {
  return (relative + root) % size;
}

/// Linear gather of arrivals at rank 0, then a linear release — O(size)
/// messages, trivially correct at classroom scales.
template <class Transport>
void barrier(Transport& t) {
  if (t.rank() == 0) {
    for (int r = 1; r < t.size(); ++r) {
      (void)t.recv_raw(-1, kTagBarrierUp);
    }
    for (int r = 1; r < t.size(); ++r) {
      t.send_raw(r, kTagBarrierDown, 0, {});
    }
  } else {
    t.send_raw(0, kTagBarrierUp, 0, {});
    (void)t.recv_raw(0, kTagBarrierDown);
  }
}

// --- segmented binomial broadcast core --------------------------------------

/// Sink receiving the broadcast bytes at a non-root rank. Two delivery
/// paths: take() hands over the single whole-payload frame (move, zero
/// copies), dst() names the destination for segment-by-segment assembly
/// (the assembly is the one counted copy).
struct BufferSink {
  Buffer* out;
  std::byte* dst(std::size_t total) {
    *out = Buffer::uninitialized(total);
    return out->mutable_data();
  }
  void take(Buffer&& whole) { *out = std::move(whole); }
};

/// Broadcast `payload` (root's input) down the binomial tree rooted at
/// `root`. Small payloads travel as one frame per tree edge; payloads
/// above kPipelineSegmentBytes travel as a header frame plus refcounted
/// segment slices, forwarded to children as they arrive (pipelined, no
/// re-encode, no store-and-forward of the whole payload).
template <class Transport, class Sink>
void bcast_bytes(Transport& t, int root, const Buffer& payload, Sink&& sink) {
  const int size = t.size();
  const int relative = relative_rank(t.rank(), root, size);

  // Parent = lowest set bit of the relative rank; children = the bits
  // below it (descending), exactly the classic binomial order.
  int mask = 1;
  int parent = -1;
  while (mask < size) {
    if ((relative & mask) != 0) {
      parent = absolute_rank(relative ^ mask, root, size);
      break;
    }
    mask <<= 1;
  }
  const auto for_children = [&](auto&& fn) {
    for (int m = mask >> 1; m > 0; m >>= 1) {
      if (relative + m < size) {
        fn(absolute_rank(relative + m, root, size));
      }
    }
  };

  if (parent < 0) {  // root
    const std::size_t seg = effective_segment_bytes(t.pipeline_segment_bytes());
    const std::size_t total = payload.size();
    if (segment_count(total, seg) == 1) {
      for_children([&](int child) {
        t.send_raw(child, kTagBcast, raw_bytes_hash(), payload);
      });
      return;
    }
    const Buffer header =
        Codec<std::uint64_t>::encode(static_cast<std::uint64_t>(total));
    for_children([&](int child) {
      t.send_raw(child, kTagBcast, header_hash(), header);
    });
    for (std::size_t offset = 0; offset < total; offset += seg) {
      const std::size_t len = std::min(seg, total - offset);
      const Buffer piece = payload.slice(offset, len);
      for_children([&](int child) {
        t.send_raw(child, kTagBcast, segment_hash(), piece);
      });
    }
    return;
  }

  RawMessage first = t.recv_raw(parent, kTagBcast);
  if (first.type_hash != header_hash()) {
    // Whole payload in one frame: forward the refcounted buffer, then
    // hand it to the sink.
    for_children([&](int child) {
      t.send_raw(child, kTagBcast, first.type_hash, first.payload);
    });
    sink.take(std::move(first.payload));
    return;
  }
  const auto total =
      static_cast<std::size_t>(Codec<std::uint64_t>::decode(first.payload));
  for_children([&](int child) {
    t.send_raw(child, kTagBcast, header_hash(), first.payload);
  });
  // Assemble until the announced total arrives — the receiver needs no
  // knowledge of the sender's segment size.
  std::byte* dst = sink.dst(total);
  std::size_t offset = 0;
  while (offset < total) {
    RawMessage piece = t.recv_raw(parent, kTagBcast);
    for_children([&](int child) {
      t.send_raw(child, kTagBcast, segment_hash(), piece.payload);
    });
    util::ensure(offset + piece.payload.size() <= total,
                 "bcast: segmented payload overruns the header total");
    copy_payload(dst + offset, piece.payload.data(), piece.payload.size());
    offset += piece.payload.size();
  }
}

/// Raw broadcast of a payload buffer: root's `payload` in, every rank's
/// `payload` out. Zero-copy at non-root ranks for small payloads (the
/// received frame is kept), one assembly copy above the pipeline
/// threshold.
template <class Transport>
void bcast_raw(Transport& t, Buffer& payload, int root) {
  check_root(root, t.size());
  if (t.size() == 1) {
    return;
  }
  if (t.rank() == root) {
    Buffer unused;
    bcast_bytes(t, root, payload, BufferSink{&unused});
    return;
  }
  Buffer received;
  bcast_bytes(t, root, Buffer{}, BufferSink{&received});
  payload = std::move(received);
}

// --- typed broadcast --------------------------------------------------------

/// Containers whose bytes can be assembled in place at the receiver:
/// std::vector of trivially copyable elements and std::string. For
/// these, the segment assembly *is* the decode copy, so a large bcast
/// costs one copy at the root (encode) and one per receiving rank.
template <class T>
struct ContiguousBytes : std::false_type {};

template <class U>
struct ContiguousBytes<std::vector<U>>
    : std::bool_constant<std::is_trivially_copyable_v<U>> {
  static std::byte* resize(std::vector<U>& c, std::size_t bytes) {
    if (bytes % sizeof(U) != 0) {
      throw MpTypeError("TeachMPI: payload size mismatch for vector type");
    }
    c.resize(bytes / sizeof(U));
    return reinterpret_cast<std::byte*>(c.data());
  }
};

template <>
struct ContiguousBytes<std::string> : std::true_type {
  static std::byte* resize(std::string& c, std::size_t bytes) {
    c.resize(bytes);
    return reinterpret_cast<std::byte*>(c.data());
  }
};

template <class C>
struct ContiguousSink {
  C* out;
  std::byte* dst(std::size_t total) {
    return ContiguousBytes<C>::resize(*out, total);
  }
  void take(Buffer&& whole) {
    std::byte* p = ContiguousBytes<C>::resize(*out, whole.size());
    copy_payload(p, whole.data(), whole.size());
  }
};

/// Binomial-tree broadcast (MPICH-style), segmented above the pipeline
/// threshold. Vector and string payloads are assembled straight into the
/// caller's object; other payload types round-trip through Codec.
template <class T, class Transport>
void bcast(Transport& t, T& value, int root) {
  check_root(root, t.size());
  if (t.size() == 1) {
    return;
  }
  if constexpr (ContiguousBytes<T>::value) {
    Buffer payload;
    if (t.rank() == root) {
      payload = Codec<T>::encode(value);
    }
    bcast_bytes(t, root, payload, ContiguousSink<T>{&value});
  } else {
    Buffer payload;
    if (t.rank() == root) {
      payload = Codec<T>::encode(value);
      bcast_bytes(t, root, payload, BufferSink{&payload});
    } else {
      Buffer received;
      bcast_bytes(t, root, payload, BufferSink{&received});
      value = Codec<T>::decode(received.view());
    }
  }
}

// --- reductions -------------------------------------------------------------

/// Binomial-tree reduction toward `root` with a commutative, associative
/// op. Non-root ranks return their partial; only root's value is final.
template <class T, class Op, class Transport>
T reduce(Transport& t, const T& value, Op op, int root) {
  check_root(root, t.size());
  const int relative = relative_rank(t.rank(), root, t.size());
  T accumulated = value;
  int mask = 1;
  while (mask < t.size()) {
    if ((relative & mask) == 0) {
      const int partner = relative | mask;
      if (partner < t.size()) {
        const RawMessage message = t.recv_raw(
            absolute_rank(partner, root, t.size()), kTagReduce);
        accumulated = op(accumulated, Codec<T>::decode(message.payload));
      }
    } else {
      t.send_raw(absolute_rank(relative ^ mask, root, t.size()), kTagReduce,
                 type_hash_of<T>(), Codec<T>::encode(accumulated));
      break;
    }
    mask <<= 1;
  }
  return accumulated;
}

template <class T, class Op, class Transport>
T allreduce(Transport& t, const T& value, Op op) {
  T result = reduce(t, value, op, 0);
  bcast(t, result, 0);
  return result;
}

/// In-place element-wise binomial reduction of equal-length vectors,
/// pipelined in segments: a rank folds segment s from every child, then
/// forwards its partial segment s to its parent while later segments
/// are still in flight. Only root's vector holds the full reduction.
template <class U, class Op, class Transport>
void reduce_elementwise(Transport& t, std::vector<U>& data, Op op, int root) {
  static_assert(std::is_trivially_copyable_v<U>);
  check_root(root, t.size());
  const int size = t.size();
  if (size == 1) {
    return;
  }
  const int relative = relative_rank(t.rank(), root, size);

  // Children in ascending-mask order (they finish combining in that
  // order), parent at the lowest set bit — same tree as reduce().
  std::vector<int> children;
  int parent = -1;
  for (int mask = 1; mask < size; mask <<= 1) {
    if ((relative & mask) == 0) {
      const int partner = relative | mask;
      if (partner < size) {
        children.push_back(absolute_rank(partner, root, size));
      }
    } else {
      parent = absolute_rank(relative ^ mask, root, size);
      break;
    }
  }

  const std::size_t n = data.size();
  const std::size_t seg = effective_segment_bytes(t.pipeline_segment_bytes());
  const std::size_t per_segment = std::max<std::size_t>(1, seg / sizeof(U));
  const std::size_t segments =
      n == 0 ? 1 : (n + per_segment - 1) / per_segment;
  for (std::size_t s = 0; s < segments; ++s) {
    const std::size_t begin = std::min(n, s * per_segment);
    const std::size_t count = std::min(per_segment, n - begin);
    for (const int child : children) {
      const RawMessage message = t.recv_raw(child, kTagReduce);
      const std::span<const U> incoming =
          Codec<std::vector<U>>::view(message.payload);
      util::require(incoming.size() == count,
                    "reduce_elementwise: ranks disagree on the element count");
      for (std::size_t i = 0; i < count; ++i) {
        data[begin + i] = op(data[begin + i], incoming[i]);
      }
    }
    if (parent >= 0) {
      t.send_raw(parent, kTagReduce, segment_hash(),
                 Buffer::copy_of(data.data() + begin, count * sizeof(U)));
    }
  }
}

template <class U, class Op, class Transport>
void allreduce_elementwise(Transport& t, std::vector<U>& data, Op op) {
  reduce_elementwise(t, data, op, 0);
  bcast(t, data, 0);
}

// --- scatter / gather / allgather -------------------------------------------

template <class T, class Transport>
T scatter(Transport& t, const std::vector<T>& values, int root) {
  check_root(root, t.size());
  if (t.rank() == root) {
    util::require(static_cast<int>(values.size()) == t.size(),
                  "scatter: root must supply one value per rank");
    for (int r = 0; r < t.size(); ++r) {
      if (r != root) {
        t.send_raw(r, kTagScatter, type_hash_of<T>(),
                   Codec<T>::encode(values[static_cast<std::size_t>(r)]));
      }
    }
    return values[static_cast<std::size_t>(root)];
  }
  const RawMessage message = t.recv_raw(root, kTagScatter);
  return Codec<T>::decode(message.payload);
}

/// Zero-copy scatter of pre-built payload blobs: root moves one buffer
/// to each rank, every rank gets its blob without a copy.
template <class Transport>
Buffer scatter_raw(Transport& t, std::vector<Buffer> blobs, int root) {
  check_root(root, t.size());
  if (t.rank() == root) {
    util::require(static_cast<int>(blobs.size()) == t.size(),
                  "scatter_raw: root must supply one blob per rank");
    for (int r = 0; r < t.size(); ++r) {
      if (r != root) {
        t.send_raw(r, kTagScatter, raw_bytes_hash(),
                   std::move(blobs[static_cast<std::size_t>(r)]));
      }
    }
    return std::move(blobs[static_cast<std::size_t>(root)]);
  }
  RawMessage message = t.recv_raw(root, kTagScatter);
  return std::move(message.payload);
}

template <class T, class Transport>
std::vector<T> gather(Transport& t, const T& value, int root) {
  check_root(root, t.size());
  if (t.rank() == root) {
    std::vector<T> collected(static_cast<std::size_t>(t.size()), value);
    for (int r = 0; r < t.size(); ++r) {
      if (r != root) {
        const RawMessage message = t.recv_raw(r, kTagGather);
        collected[static_cast<std::size_t>(r)] =
            Codec<T>::decode(message.payload);
      }
    }
    return collected;
  }
  t.send_raw(root, kTagGather, type_hash_of<T>(), Codec<T>::encode(value));
  return {};
}

/// Zero-copy gather of payload blobs: root receives each rank's buffer
/// as sent (no decode copy); non-root ranks return an empty vector.
template <class Transport>
std::vector<Buffer> gather_raw(Transport& t, Buffer blob, int root) {
  check_root(root, t.size());
  if (t.rank() == root) {
    std::vector<Buffer> collected(static_cast<std::size_t>(t.size()));
    collected[static_cast<std::size_t>(root)] = std::move(blob);
    for (int r = 0; r < t.size(); ++r) {
      if (r != root) {
        RawMessage message = t.recv_raw(r, kTagGather);
        collected[static_cast<std::size_t>(r)] = std::move(message.payload);
      }
    }
    return collected;
  }
  t.send_raw(root, kTagGather, raw_bytes_hash(), std::move(blob));
  return {};
}

/// Shared core of allgather and allgather_view: gather each rank's
/// encoded payload to rank 0 (n - 1 messages), pack them into one
/// length-prefixed frame, and broadcast that frame down the binomial
/// tree (n - 1 frames when the pack fits one segment — 2(n - 1)
/// messages total). Returns the packed frame on every rank.
template <class Transport>
Buffer allgather_pack(Transport& t, Buffer mine) {
  std::vector<Buffer> gathered = gather_raw(t, std::move(mine), 0);
  Buffer packed;
  if (t.rank() == 0) {
    std::size_t total = 0;
    for (const Buffer& blob : gathered) {
      total += sizeof(std::uint64_t) + blob.size();
    }
    packed = Buffer::uninitialized(total);
    std::byte* p = packed.mutable_data();
    for (const Buffer& blob : gathered) {
      const auto len = static_cast<std::uint64_t>(blob.size());
      std::memcpy(p, &len, sizeof(len));
      p += sizeof(len);
      copy_payload(p, blob.data(), blob.size());
      p += blob.size();
    }
  }
  bcast_raw(t, packed, 0);
  return packed;
}

/// Read the next length-prefixed slice of a packed allgather frame:
/// returns {payload offset, payload length} and advances `cursor` past
/// the slice.
inline std::pair<std::size_t, std::size_t> next_packed_slice(
    const Buffer& packed, std::size_t& cursor) {
  std::uint64_t len = 0;
  if (cursor + sizeof(len) > packed.size()) {
    throw MpTypeError("allgather: truncated pack frame");
  }
  std::memcpy(&len, packed.data() + cursor, sizeof(len));
  cursor += sizeof(len);
  if (len > packed.size() - cursor) {
    throw MpTypeError("allgather: truncated pack frame");
  }
  const std::size_t offset = cursor;
  cursor += static_cast<std::size_t>(len);
  return {offset, static_cast<std::size_t>(len)};
}

/// Allgather in O(n) messages via one packed broadcast frame. The old
/// element-wise bcast loop cost n * ceil(log2 n) messages and decoded /
/// re-encoded at every hop.
template <class T, class Transport>
std::vector<T> allgather(Transport& t, const T& value) {
  const int n = t.size();
  if (n == 1) {
    return std::vector<T>{value};
  }
  const Buffer packed = allgather_pack(t, Codec<T>::encode(value));
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(n));
  std::size_t cursor = 0;
  for (int r = 0; r < n; ++r) {
    const auto [offset, len] = next_packed_slice(packed, cursor);
    out.push_back(Codec<T>::decode(ByteView(packed.data() + offset, len)));
  }
  return out;
}

/// Zero-copy allgather of vector payloads: each rank moves its vector
/// in and gets a read-only view of every rank's elements back. All n
/// views alias the single packed broadcast frame, so beyond the pack
/// copy at rank 0 no per-rank decode copies are made. Requires
/// alignof(U) <= alignof(std::uint64_t): slice offsets inside the pack
/// are only aligned that far.
template <class U, class Transport>
std::vector<PayloadView<U>> allgather_view(Transport& t,
                                           std::vector<U>&& values) {
  const int n = t.size();
  Buffer mine = Codec<std::vector<U>>::encode(std::move(values));
  if (n == 1) {
    std::vector<PayloadView<U>> views;
    views.push_back(PayloadView<U>(std::move(mine)));
    return views;
  }
  const Buffer packed = allgather_pack(t, std::move(mine));
  std::vector<PayloadView<U>> views;
  views.reserve(static_cast<std::size_t>(n));
  std::size_t cursor = 0;
  for (int r = 0; r < n; ++r) {
    const auto [offset, len] = next_packed_slice(packed, cursor);
    views.push_back(PayloadView<U>(packed.slice(offset, len)));
  }
  return views;
}

// --- ring allreduce ---------------------------------------------------------

/// Bandwidth-optimal ring allreduce, in place, for any element count
/// (uneven floor segments — segment k covers [k*N/n, (k+1)*N/n)) and
/// any trivially copyable element. Reduce-scatter around the ring, then
/// allgather the reduced segments; each step ships one pooled copy of
/// the outgoing slice and folds the incoming slice through a zero-copy
/// view — no per-step slice vectors.
template <class U, class Op, class Transport>
void ring_allreduce(Transport& t, std::vector<U>& data, Op op) {
  static_assert(std::is_trivially_copyable_v<U>);
  const int n = t.size();
  if (n == 1) {
    return;
  }
  const std::size_t total = data.size();
  const int next = (t.rank() + 1) % n;
  const int prev = (t.rank() - 1 + n) % n;
  const auto seg_begin = [&](int k) {
    return static_cast<std::size_t>(k) * total / static_cast<std::size_t>(n);
  };
  const auto send_segment = [&](int index, int tag) {
    const std::size_t begin = seg_begin(index);
    const std::size_t count = seg_begin(index + 1) - begin;
    t.send_raw(next, tag, segment_hash(),
               Buffer::copy_of(data.data() + begin, count * sizeof(U)));
  };

  // Phase 1: reduce-scatter. After n-1 steps rank r owns the fully
  // reduced segment (r+1) mod n.
  for (int step = 0; step < n - 1; ++step) {
    const int send_index = (t.rank() - step + n) % n;
    const int recv_index = (t.rank() - step - 1 + n) % n;
    send_segment(send_index, kTagRingA);
    const RawMessage message = t.recv_raw(prev, kTagRingA);
    const std::span<const U> incoming =
        Codec<std::vector<U>>::view(message.payload);
    const std::size_t begin = seg_begin(recv_index);
    for (std::size_t i = 0; i < incoming.size(); ++i) {
      data[begin + i] = op(data[begin + i], incoming[i]);
    }
  }

  // Phase 2: allgather the reduced segments around the ring.
  for (int step = 0; step < n - 1; ++step) {
    const int send_index = ((t.rank() + 1 - step) % n + n) % n;
    const int recv_index = (t.rank() - step + n) % n;
    send_segment(send_index, kTagRingB);
    const RawMessage message = t.recv_raw(prev, kTagRingB);
    copy_payload(data.data() + seg_begin(recv_index), message.payload.data(),
                 message.payload.size());
  }
}

template <class Transport>
std::vector<double> ring_allreduce_sum(Transport& t,
                                       std::vector<double> data) {
  ring_allreduce(t, data, [](double a, double b) { return a + b; });
  return data;
}

}  // namespace pblpar::mp::detail
