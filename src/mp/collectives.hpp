#pragma once

#include <utility>
#include <vector>

#include "mp/message.hpp"
#include "util/error.hpp"

namespace pblpar::mp::detail {

// Internal collective tags. kAnyTag is -1, so internal tags start at -2;
// user tags must be non-negative.
constexpr int kTagBarrierUp = -2;
constexpr int kTagBarrierDown = -3;
constexpr int kTagBcast = -4;
constexpr int kTagReduce = -5;
constexpr int kTagScatter = -6;
constexpr int kTagGather = -7;
constexpr int kTagRingA = -8;
constexpr int kTagRingB = -9;

/// The collective algorithms, generic over a transport endpoint with
///   int rank(); int size();
///   void send_raw(int dest, int tag, std::size_t type_hash,
///                 std::vector<std::byte> payload);
///   RawMessage recv_raw(int source, int tag);
/// Both the host world (mp::Comm) and the simulated cluster
/// (mp::SimComm) instantiate them, so the algorithms and their tests are
/// shared.

inline void check_root(int root, int size) {
  util::require(root >= 0 && root < size, "collective: root rank out of range");
}

inline int relative_rank(int rank, int root, int size) {
  return (rank - root + size) % size;
}

inline int absolute_rank(int relative, int root, int size) {
  return (relative + root) % size;
}

/// Linear gather of arrivals at rank 0, then a linear release — O(size)
/// messages, trivially correct at classroom scales.
template <class Transport>
void barrier(Transport& t) {
  if (t.rank() == 0) {
    for (int r = 1; r < t.size(); ++r) {
      (void)t.recv_raw(-1, kTagBarrierUp);
    }
    for (int r = 1; r < t.size(); ++r) {
      t.send_raw(r, kTagBarrierDown, 0, {});
    }
  } else {
    t.send_raw(0, kTagBarrierUp, 0, {});
    (void)t.recv_raw(0, kTagBarrierDown);
  }
}

/// Binomial-tree broadcast (MPICH-style).
template <class T, class Transport>
void bcast(Transport& t, T& value, int root) {
  check_root(root, t.size());
  const int relative = relative_rank(t.rank(), root, t.size());
  int mask = 1;
  while (mask < t.size()) {
    if ((relative & mask) != 0) {
      const RawMessage message = t.recv_raw(
          absolute_rank(relative ^ mask, root, t.size()), kTagBcast);
      value = Codec<T>::decode(message.payload);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < t.size()) {
      t.send_raw(absolute_rank(relative + mask, root, t.size()), kTagBcast,
                 type_hash_of<T>(), Codec<T>::encode(value));
    }
    mask >>= 1;
  }
}

/// Binomial-tree reduction toward `root` with a commutative, associative
/// op. Non-root ranks return their partial; only root's value is final.
template <class T, class Op, class Transport>
T reduce(Transport& t, const T& value, Op op, int root) {
  check_root(root, t.size());
  const int relative = relative_rank(t.rank(), root, t.size());
  T accumulated = value;
  int mask = 1;
  while (mask < t.size()) {
    if ((relative & mask) == 0) {
      const int partner = relative | mask;
      if (partner < t.size()) {
        const RawMessage message = t.recv_raw(
            absolute_rank(partner, root, t.size()), kTagReduce);
        accumulated = op(accumulated, Codec<T>::decode(message.payload));
      }
    } else {
      t.send_raw(absolute_rank(relative ^ mask, root, t.size()), kTagReduce,
                 type_hash_of<T>(), Codec<T>::encode(accumulated));
      break;
    }
    mask <<= 1;
  }
  return accumulated;
}

template <class T, class Op, class Transport>
T allreduce(Transport& t, const T& value, Op op) {
  T result = reduce(t, value, op, 0);
  bcast(t, result, 0);
  return result;
}

template <class T, class Transport>
T scatter(Transport& t, const std::vector<T>& values, int root) {
  check_root(root, t.size());
  if (t.rank() == root) {
    util::require(static_cast<int>(values.size()) == t.size(),
                  "scatter: root must supply one value per rank");
    for (int r = 0; r < t.size(); ++r) {
      if (r != root) {
        t.send_raw(r, kTagScatter, type_hash_of<T>(),
                   Codec<T>::encode(values[static_cast<std::size_t>(r)]));
      }
    }
    return values[static_cast<std::size_t>(root)];
  }
  const RawMessage message = t.recv_raw(root, kTagScatter);
  return Codec<T>::decode(message.payload);
}

template <class T, class Transport>
std::vector<T> gather(Transport& t, const T& value, int root) {
  check_root(root, t.size());
  if (t.rank() == root) {
    std::vector<T> collected(static_cast<std::size_t>(t.size()), value);
    for (int r = 0; r < t.size(); ++r) {
      if (r != root) {
        const RawMessage message = t.recv_raw(r, kTagGather);
        collected[static_cast<std::size_t>(r)] =
            Codec<T>::decode(message.payload);
      }
    }
    return collected;
  }
  t.send_raw(root, kTagGather, type_hash_of<T>(), Codec<T>::encode(value));
  return {};
}

template <class T, class Transport>
std::vector<T> allgather(Transport& t, const T& value) {
  // Gather at 0, then broadcast element-wise: broadcasting the collected
  // vector whole would need a Codec for vector<T>, which only exists for
  // trivially copyable T. Element-wise, any payload a point-to-point
  // message can carry (strings, nested vectors) allgathers too.
  std::vector<T> collected = gather(t, value, 0);
  if (t.rank() != 0) {
    collected.assign(static_cast<std::size_t>(t.size()), value);
  }
  for (int r = 0; r < t.size(); ++r) {
    bcast(t, collected[static_cast<std::size_t>(r)], 0);
  }
  return collected;
}

/// Bandwidth-optimal ring allreduce (sum): reduce-scatter around the
/// ring, then allgather the reduced segments. data.size() must be
/// divisible by size().
template <class Transport>
std::vector<double> ring_allreduce_sum(Transport& t,
                                       std::vector<double> data) {
  const int n = t.size();
  if (n == 1) {
    return data;
  }
  util::require(data.size() % static_cast<std::size_t>(n) == 0,
                "ring_allreduce_sum: data size must be divisible by the "
                "number of ranks");
  const std::size_t segment = data.size() / static_cast<std::size_t>(n);
  const int next = (t.rank() + 1) % n;
  const int prev = (t.rank() - 1 + n) % n;

  const auto slice = [&](int index) {
    const std::size_t offset = static_cast<std::size_t>(index) * segment;
    return std::vector<double>(
        data.begin() + static_cast<std::ptrdiff_t>(offset),
        data.begin() + static_cast<std::ptrdiff_t>(offset + segment));
  };

  // Phase 1: reduce-scatter. After n-1 steps rank r owns the fully
  // reduced segment (r+1) mod n.
  for (int step = 0; step < n - 1; ++step) {
    const int send_index = (t.rank() - step + n) % n;
    const int recv_index = (t.rank() - step - 1 + n) % n;
    t.send_raw(next, kTagRingA, type_hash_of<std::vector<double>>(),
               Codec<std::vector<double>>::encode(slice(send_index)));
    const RawMessage message = t.recv_raw(prev, kTagRingA);
    const std::vector<double> incoming =
        Codec<std::vector<double>>::decode(message.payload);
    const std::size_t offset =
        static_cast<std::size_t>(recv_index) * segment;
    for (std::size_t i = 0; i < segment; ++i) {
      data[offset + i] += incoming[i];
    }
  }

  // Phase 2: allgather the reduced segments around the ring.
  for (int step = 0; step < n - 1; ++step) {
    const int send_index = (t.rank() + 1 - step + n) % n;
    const int recv_index = (t.rank() - step + n) % n;
    t.send_raw(next, kTagRingB, type_hash_of<std::vector<double>>(),
               Codec<std::vector<double>>::encode(slice(send_index)));
    const RawMessage message = t.recv_raw(prev, kTagRingB);
    const std::vector<double> incoming =
        Codec<std::vector<double>>::decode(message.payload);
    const std::size_t offset =
        static_cast<std::size_t>(recv_index) * segment;
    for (std::size_t i = 0; i < segment; ++i) {
      data[offset + i] = incoming[i];
    }
  }
  return data;
}

}  // namespace pblpar::mp::detail
