#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace pblpar::mp {

/// A read-only view over payload bytes; the buffer that backs it must
/// stay alive for as long as the view is read.
using ByteView = std::span<const std::byte>;

/// Counters of the global recycling pool behind large message payloads.
struct PoolStats {
  std::uint64_t hits = 0;       // acquire served from the cache
  std::uint64_t misses = 0;     // acquire had to allocate
  std::uint64_t recycled = 0;   // release kept the block for reuse
  std::uint64_t discarded = 0;  // release freed the block (cache full)
};

PoolStats buffer_pool_stats();
void buffer_pool_reset_stats();

/// Drop every cached block (stats untouched). Mainly for tests that
/// want a cold pool.
void buffer_pool_trim();

/// Instrumented payload-copy accounting: every full-payload memcpy the
/// codec and collective layers perform goes through
/// detail::copy_payload, so "copies per hop" is measurable rather than
/// asserted. Inline small-message moves are not counted.
struct CopyStats {
  std::uint64_t copies = 0;
  std::uint64_t bytes = 0;
};

CopyStats payload_copy_stats();
void payload_copy_reset_stats();

namespace detail {

void note_payload_copy(std::size_t bytes);

/// Counted payload memcpy — the only way codec/collective code is
/// allowed to duplicate payload bytes.
inline void copy_payload(void* dst, const void* src, std::size_t bytes) {
  if (bytes > 0) {
    std::memcpy(dst, src, bytes);
    note_payload_copy(bytes);
  }
}

struct PooledBlock {
  std::byte* data = nullptr;
  std::size_t capacity = 0;
};

PooledBlock pool_acquire(std::size_t size);
void pool_release(std::byte* data, std::size_t capacity) noexcept;

}  // namespace detail

/// The payload of a RawMessage: immutable-after-publish bytes with three
/// storage modes, so a payload travels send_raw -> Mailbox -> recv_raw
/// -> decode without being duplicated:
///
///  - inline: payloads up to kInlineCapacity live inside the Buffer
///    itself (no allocation at all; moves copy at most 64 bytes);
///  - pooled: larger payloads built via uninitialized()/copy_of() use
///    blocks from a recycling size-class pool, returned on last release;
///  - adopted: an existing vector/string is moved in whole, so
///    `send_raw(dest, tag, hash, writer.take())` ships without a copy.
///
/// Copies of a Buffer share storage (refcount); slice() shares too,
/// which is what lets the segmented collectives forward received pieces
/// to tree children for free.
class Buffer {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  Buffer() = default;

  /// Adopt a byte vector (zero copy above the inline threshold).
  // NOLINTNEXTLINE(google-explicit-constructor)
  Buffer(std::vector<std::byte>&& bytes) {
    adopt_container(std::move(bytes));
  }

  /// Adopt any contiguous container of trivially copyable elements.
  template <class U>
  static Buffer adopt(std::vector<U>&& values) {
    static_assert(std::is_trivially_copyable_v<U>);
    Buffer buffer;
    buffer.adopt_container(std::move(values));
    return buffer;
  }

  static Buffer adopt(std::string&& text) {
    Buffer buffer;
    buffer.adopt_container(std::move(text));
    return buffer;
  }

  /// A writable buffer of `size` uninitialized bytes (inline or pooled).
  /// Fill it through mutable_data() before sharing it.
  static Buffer uninitialized(std::size_t size);

  /// A buffer holding a counted copy of `[data, data + size)`.
  static Buffer copy_of(const void* data, std::size_t size);

  Buffer(const Buffer& other) { assign_from(other); }
  Buffer(Buffer&& other) noexcept {
    assign_from(other);
    other.clear();
  }
  Buffer& operator=(const Buffer& other) {
    if (this != &other) {
      assign_from(other);
    }
    return *this;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      assign_from(other);
      other.clear();
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::byte* data() const { return data_; }

  /// Writable pointer to the bytes. Only valid while this Buffer is the
  /// sole owner of its storage (the build phase right after
  /// uninitialized()); once shared, the bytes are immutable.
  std::byte* mutable_data() { return const_cast<std::byte*>(data_); }

  ByteView view() const { return ByteView(data_, size_); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator ByteView() const { return view(); }

  /// Sub-range sharing the same storage (no copy above the inline
  /// threshold). Throws on an out-of-range request.
  Buffer slice(std::size_t offset, std::size_t count) const;

  bool is_inline() const { return size_ > 0 && keepalive_ == nullptr; }

  void clear() {
    keepalive_.reset();
    data_ = nullptr;
    size_ = 0;
  }

 private:
  void assign_from(const Buffer& other) {
    size_ = other.size_;
    if (other.keepalive_ != nullptr) {
      keepalive_ = other.keepalive_;
      data_ = other.data_;
      return;
    }
    keepalive_.reset();
    if (size_ > 0) {
      std::memcpy(sbo_.data(), other.data_, size_);
      data_ = sbo_.data();
    } else {
      data_ = nullptr;
    }
  }

  template <class C>
  void adopt_container(C&& container) {
    using Value = typename std::remove_reference_t<C>::value_type;
    const std::size_t bytes = container.size() * sizeof(Value);
    if (bytes <= kInlineCapacity) {
      if (bytes > 0) {
        std::memcpy(sbo_.data(), container.data(), bytes);
        data_ = sbo_.data();
      } else {
        data_ = nullptr;
      }
      size_ = bytes;
      keepalive_.reset();
      return;
    }
    auto owner = std::make_shared<std::remove_reference_t<C>>(
        std::forward<C>(container));
    data_ = reinterpret_cast<const std::byte*>(owner->data());
    size_ = bytes;
    keepalive_ = std::move(owner);
  }

  std::shared_ptr<const void> keepalive_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  // max_align_t alignment so typed views over inline payloads are valid.
  alignas(std::max_align_t) std::array<std::byte, kInlineCapacity> sbo_;
};

}  // namespace pblpar::mp
