#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::mp {

/// Per-link failure model: each probability is rolled independently per
/// message at the mailbox push boundary. The mp transport counterpart of
/// rt::ChaosPlan — same seeded-xoshiro discipline, so a plan replays
/// bit-identically on the Sim world and statistically identically on the
/// host world.
struct LinkChaos {
  /// Probability the message silently disappears (never pushed).
  double drop = 0.0;

  /// Probability the message is pushed twice (wire-level ghost copy; the
  /// duplicate is not charged to the sender's transfer budget on Sim).
  double duplicate = 0.0;

  /// Probability the message is held back and released only after the
  /// *next* message on the same link is pushed — a one-deep reorder, the
  /// minimal violation of per-link FIFO. A held message with no
  /// successor behaves like a drop until more traffic flows.
  double reorder = 0.0;

  /// Probability the message is delayed by uniform(0, delay_s) before
  /// delivery: the host sender sleeps, the Sim arrival time shifts.
  double delay_probability = 0.0;
  double delay_s = 0.0;

  bool empty() const {
    return drop <= 0.0 && duplicate <= 0.0 && reorder <= 0.0 &&
           delay_probability <= 0.0;
  }
};

/// Scopes a LinkChaos to a (source, dest) pair; -1 is a wildcard. The
/// first matching rule wins, falling back to TransportChaos::all.
struct ChaosLinkRule {
  int source = -1;
  int dest = -1;
  LinkChaos link;
};

/// What chaos decided for one message: rolled from the link's seeded
/// stream by detail::draw_chaos, applied by the transport that owns the
/// push (host mailbox or Sim inbox).
struct ChaosDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  double delay_s = 0.0;  // 0 = no delay
};

/// Seeded drop/delay/duplicate/reorder plan for a whole world. Injected
/// at the Mailbox push boundary of mp::World and the inbox push of
/// SimWorld; per-rank injection counters surface in Comm::wire_stats.
/// An empty plan (the default) is never consulted — the unarmed send
/// path is untouched.
struct TransportChaos {
  /// Default model for every link.
  LinkChaos all;

  /// Per-link overrides; first match wins (source/dest of -1 match any).
  std::vector<ChaosLinkRule> links;

  /// Seed for the per-link xoshiro streams (each link (s, d) gets an
  /// independent stream derived from this, so adding traffic on one
  /// link never perturbs another link's draws).
  std::uint64_t seed = 1;

  bool armed() const {
    if (!all.empty()) {
      return true;
    }
    for (const ChaosLinkRule& rule : links) {
      if (!rule.link.empty()) {
        return true;
      }
    }
    return false;
  }

  /// The model governing messages from `source` to `dest`.
  const LinkChaos& link_for(int source, int dest) const {
    for (const ChaosLinkRule& rule : links) {
      if ((rule.source < 0 || rule.source == source) &&
          (rule.dest < 0 || rule.dest == dest)) {
        return rule.link;
      }
    }
    return all;
  }

  /// Fail loudly on a degenerate plan: probabilities must be finite and
  /// in [0, 1], drop strictly below 1 (a link that drops everything is a
  /// severed cable, not chaos), delays finite and non-negative, and a
  /// positive delay probability needs a positive delay.
  void validate() const;
};

namespace detail {

/// Roll every armed die for one message. The number of draws per message
/// depends only on the link's configuration (dropped messages still roll
/// the remaining dice), so injection decisions for the Nth message on a
/// link are a pure function of (plan, N) — the property the Sim replay
/// tests pin down.
inline ChaosDecision draw_chaos(const LinkChaos& link, util::Rng& rng) {
  ChaosDecision decision;
  if (link.drop > 0.0) {
    decision.drop = rng.bernoulli(link.drop);
  }
  if (link.duplicate > 0.0) {
    decision.duplicate = rng.bernoulli(link.duplicate);
  }
  if (link.reorder > 0.0) {
    decision.reorder = rng.bernoulli(link.reorder);
  }
  if (link.delay_probability > 0.0 && rng.bernoulli(link.delay_probability)) {
    decision.delay_s = rng.uniform(0.0, link.delay_s);
  }
  return decision;
}

/// Independent stream for link (source, dest) of a world of `size` ranks.
inline util::Rng chaos_link_rng(std::uint64_t seed, int size, int source,
                                int dest) {
  util::SplitMix64 mix(seed ^ 0xC4A05ADB0D7F3D5FULL);
  const std::uint64_t base = mix.next();
  const std::uint64_t index =
      static_cast<std::uint64_t>(source) * static_cast<std::uint64_t>(size) +
      static_cast<std::uint64_t>(dest);
  util::SplitMix64 link_mix(base + 0x9E3779B97F4A7C15ULL * (index + 1));
  return util::Rng(link_mix.next());
}

inline void validate_link(const LinkChaos& link, const char* scope) {
  const auto probability_ok = [](double p) {
    return std::isfinite(p) && p >= 0.0 && p <= 1.0;
  };
  util::require(probability_ok(link.drop),
                std::string("TransportChaos::validate: ") + scope +
                    " drop probability must be finite and in [0, 1]");
  util::require(link.drop < 1.0,
                std::string("TransportChaos::validate: ") + scope +
                    " drop probability of 1 severs the link entirely; "
                    "model a dead peer with cluster::CrashFault instead");
  util::require(probability_ok(link.duplicate),
                std::string("TransportChaos::validate: ") + scope +
                    " duplicate probability must be finite and in [0, 1]");
  util::require(probability_ok(link.reorder),
                std::string("TransportChaos::validate: ") + scope +
                    " reorder probability must be finite and in [0, 1]");
  util::require(probability_ok(link.delay_probability),
                std::string("TransportChaos::validate: ") + scope +
                    " delay probability must be finite and in [0, 1]");
  util::require(std::isfinite(link.delay_s) && link.delay_s >= 0.0,
                std::string("TransportChaos::validate: ") + scope +
                    " delay must be finite and non-negative");
  util::require(link.delay_probability <= 0.0 || link.delay_s > 0.0,
                std::string("TransportChaos::validate: ") + scope +
                    " delay probability is armed but the delay is zero");
}

}  // namespace detail

inline void TransportChaos::validate() const {
  detail::validate_link(all, "all-links");
  for (const ChaosLinkRule& rule : links) {
    util::require(rule.source >= -1,
                  "TransportChaos::validate: link rule source must be a rank "
                  "or -1 (any)");
    util::require(rule.dest >= -1,
                  "TransportChaos::validate: link rule dest must be a rank "
                  "or -1 (any)");
    detail::validate_link(rule.link, "per-link");
  }
}

}  // namespace pblpar::mp
