#include "mp/buffer.hpp"

#include <atomic>
#include <mutex>

#include "util/error.hpp"

namespace pblpar::mp {

namespace {

// Size classes: powers of two from 4 KiB to 32 MiB. Larger payloads
// bypass the cache (allocated and freed directly).
constexpr std::size_t kMinBlockBytes = std::size_t{1} << 12;
constexpr int kClassCount = 14;
constexpr std::size_t kMaxCachedPerClass = 8;

struct PoolClass {
  std::mutex mu;
  std::vector<std::byte*> blocks;
};

PoolClass& pool_class(int index) {
  static PoolClass classes[kClassCount];
  return classes[index];
}

std::atomic<std::uint64_t> g_pool_hits{0};
std::atomic<std::uint64_t> g_pool_misses{0};
std::atomic<std::uint64_t> g_pool_recycled{0};
std::atomic<std::uint64_t> g_pool_discarded{0};

std::atomic<std::uint64_t> g_copy_count{0};
std::atomic<std::uint64_t> g_copy_bytes{0};

/// Smallest size class whose capacity holds `size`, or -1 when the
/// request is above the largest cached class.
int class_for(std::size_t size) {
  std::size_t capacity = kMinBlockBytes;
  for (int c = 0; c < kClassCount; ++c) {
    if (size <= capacity) {
      return c;
    }
    capacity <<= 1;
  }
  return -1;
}

std::size_t class_capacity(int index) {
  return kMinBlockBytes << static_cast<std::size_t>(index);
}

}  // namespace

namespace detail {

void note_payload_copy(std::size_t bytes) {
  g_copy_count.fetch_add(1, std::memory_order_relaxed);
  g_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

PooledBlock pool_acquire(std::size_t size) {
  const int index = class_for(size);
  if (index < 0) {
    g_pool_misses.fetch_add(1, std::memory_order_relaxed);
    return PooledBlock{new std::byte[size], size};
  }
  const std::size_t capacity = class_capacity(index);
  PoolClass& cls = pool_class(index);
  {
    std::lock_guard<std::mutex> lock(cls.mu);
    if (!cls.blocks.empty()) {
      std::byte* block = cls.blocks.back();
      cls.blocks.pop_back();
      g_pool_hits.fetch_add(1, std::memory_order_relaxed);
      return PooledBlock{block, capacity};
    }
  }
  g_pool_misses.fetch_add(1, std::memory_order_relaxed);
  return PooledBlock{new std::byte[capacity], capacity};
}

void pool_release(std::byte* data, std::size_t capacity) noexcept {
  const int index = class_for(capacity);
  if (index >= 0 && class_capacity(index) == capacity) {
    PoolClass& cls = pool_class(index);
    std::lock_guard<std::mutex> lock(cls.mu);
    if (cls.blocks.size() < kMaxCachedPerClass) {
      cls.blocks.push_back(data);
      g_pool_recycled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  g_pool_discarded.fetch_add(1, std::memory_order_relaxed);
  delete[] data;
}

}  // namespace detail

PoolStats buffer_pool_stats() {
  PoolStats stats;
  stats.hits = g_pool_hits.load(std::memory_order_relaxed);
  stats.misses = g_pool_misses.load(std::memory_order_relaxed);
  stats.recycled = g_pool_recycled.load(std::memory_order_relaxed);
  stats.discarded = g_pool_discarded.load(std::memory_order_relaxed);
  return stats;
}

void buffer_pool_reset_stats() {
  g_pool_hits.store(0, std::memory_order_relaxed);
  g_pool_misses.store(0, std::memory_order_relaxed);
  g_pool_recycled.store(0, std::memory_order_relaxed);
  g_pool_discarded.store(0, std::memory_order_relaxed);
}

void buffer_pool_trim() {
  for (int c = 0; c < kClassCount; ++c) {
    PoolClass& cls = pool_class(c);
    std::vector<std::byte*> blocks;
    {
      std::lock_guard<std::mutex> lock(cls.mu);
      blocks.swap(cls.blocks);
    }
    for (std::byte* block : blocks) {
      delete[] block;
    }
  }
}

CopyStats payload_copy_stats() {
  CopyStats stats;
  stats.copies = g_copy_count.load(std::memory_order_relaxed);
  stats.bytes = g_copy_bytes.load(std::memory_order_relaxed);
  return stats;
}

void payload_copy_reset_stats() {
  g_copy_count.store(0, std::memory_order_relaxed);
  g_copy_bytes.store(0, std::memory_order_relaxed);
}

Buffer Buffer::uninitialized(std::size_t size) {
  Buffer buffer;
  buffer.size_ = size;
  if (size == 0) {
    return buffer;
  }
  if (size <= kInlineCapacity) {
    buffer.data_ = buffer.sbo_.data();
    return buffer;
  }
  const detail::PooledBlock block = detail::pool_acquire(size);
  buffer.data_ = block.data;
  buffer.keepalive_ = std::shared_ptr<const void>(
      block.data, [capacity = block.capacity](const void* p) {
        detail::pool_release(
            const_cast<std::byte*>(static_cast<const std::byte*>(p)),
            capacity);
      });
  return buffer;
}

Buffer Buffer::copy_of(const void* data, std::size_t size) {
  Buffer buffer = uninitialized(size);
  detail::copy_payload(buffer.mutable_data(), data, size);
  return buffer;
}

Buffer Buffer::slice(std::size_t offset, std::size_t count) const {
  util::require(offset <= size_ && count <= size_ - offset,
                "Buffer::slice: range out of bounds");
  Buffer out;
  out.size_ = count;
  if (count == 0) {
    return out;
  }
  if (keepalive_ != nullptr) {
    out.keepalive_ = keepalive_;
    out.data_ = data_ + offset;
    return out;
  }
  std::memcpy(out.sbo_.data(), data_ + offset, count);
  out.data_ = out.sbo_.data();
  return out;
}

}  // namespace pblpar::mp
