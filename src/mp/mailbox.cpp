#include "mp/mailbox.hpp"

#include <cassert>
#include <chrono>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace pblpar::mp {

namespace {

constexpr int kAnyValue = -1;

/// Timeouts at or beyond this (about 3 years, and +infinity) mean "wait
/// forever": the pop blocks on an untimed wait instead of computing a
/// deadline. The old code fed any timeout through
/// duration_cast<nanoseconds>(duration<double>), which overflows the
/// 64-bit nanosecond rep around 292 years — signed-overflow UB and a
/// deadline in the past, so a huge timeout returned instantly instead of
/// waiting. Below the threshold the nanosecond product is at most ~1e17,
/// comfortably inside the rep.
constexpr double kWaitForeverSeconds = 1e8;

/// Yields a blocked consumer spends watching the queue before parking on
/// the condvar. Sized like the rt pool's spin phases: a ping-pong pair on
/// a busy host hands messages over entirely in user space, and a yielding
/// spinner cedes its core to the sender it is waiting on.
constexpr int kMailboxSpins = 1024;

bool matches(const RawMessage& message, int source, int tag) {
  return (source == kAnyValue || message.source == source) &&
         (tag == kAnyValue || message.tag == tag);
}

void describe_endpoint(std::ostream& os, const char* label, int value) {
  if (value == kAnyValue) {
    os << label << "=ANY";
  } else {
    os << label << "=" << value;
  }
}

}  // namespace

Mailbox::Mailbox(AbortState& abort, double timeout_s, int owner_rank)
    : abort_(&abort), timeout_s_(timeout_s), owner_rank_(owner_rank) {
  // Vyukov stub: head_ and tail_ start on the same empty node, so push
  // never special-cases an empty queue and the consumer always has a
  // node to follow `next` from.
  Node* stub = new Node;
  head_.store(stub, std::memory_order_relaxed);
  tail_ = stub;
}

Mailbox::~Mailbox() {
  // All ranks have joined by the time a mailbox dies (the world joins its
  // threads before destroying state), so the chain is quiescent.
  Node* node = tail_;
  while (node != nullptr) {
    Node* next = node->next.load(std::memory_order_relaxed);
    delete node;
    node = next;
  }
}

void Mailbox::push(RawMessage message) {
  Node* node = new Node;
  node->message = std::move(message);
  // The exchange is the serialization point: it fixes this message's slot
  // in the arrival order and hands us the unique predecessor to link
  // from. seq_cst (not just acq_rel) so it is ordered against the
  // consumer_waiting_ store/load protocol below.
  Node* prev = head_.exchange(node, std::memory_order_seq_cst);
  // Publish the node to the consumer. Between the exchange and this store
  // the list is momentarily split; the consumer detects that window
  // (head_ moved but next still null) and spins it out.
  prev->next.store(node, std::memory_order_release);
  // Dekker-style wakeup handshake, both sides seq_cst: either this load
  // sees the consumer's waiting flag (we notify), or the consumer's
  // queue_nonempty() check — which follows its flag store — sees our
  // exchange (it never parks). The empty lock section serializes with
  // the consumer's predicate evaluation under park_mu_, so the notify
  // cannot slip between its last check and its sleep. Single consumer
  // (documented invariant), hence notify_one, not notify_all: there is
  // exactly one waiter to wake, and waking it once is enough.
  if (consumer_waiting_.load(std::memory_order_seq_cst)) {
    { std::lock_guard guard(park_mu_); }
    park_cv_.notify_one();
  }
}

bool Mailbox::queue_nonempty() const {
  // head_ still pointing at the last node the consumer drained (tail_)
  // means nothing new arrived. tail_ is consumer-private, but reading it
  // here is safe for any thread: the pointer value only changes under the
  // consumer's own feet, and this method is only meaningful to the
  // consumer and its waker protocol.
  return head_.load(std::memory_order_seq_cst) != tail_;
}

void Mailbox::drain_to_pending() {
  for (;;) {
    Node* next = tail_->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      if (head_.load(std::memory_order_acquire) == tail_) {
        return;  // fully drained
      }
      // A sender is between its head_ exchange and its next link — two
      // instructions of its timeline. Yield (it may need our core) and
      // re-read.
      std::this_thread::yield();
      continue;
    }
    pending_.push_back(std::move(next->message));
    delete tail_;
    tail_ = next;  // next's message is moved out; it is the new stub
  }
}

bool Mailbox::take_pending(int source, int tag, RawMessage* out) {
  // pending_ is in arrival order (the exchange order of the pushes), so
  // the first match is the earliest — per-(source, tag) FIFO, as MPI
  // requires. Wildcards fall out of the same scan.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (matches(*it, source, tag)) {
      *out = std::move(*it);
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

void Mailbox::assert_single_consumer() {
#ifndef NDEBUG
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  if (!consumer_id_.compare_exchange_strong(expected, self,
                                            std::memory_order_relaxed)) {
    // expected now holds the recorded consumer. Only the thread running
    // owner_rank_ may pop: the MPSC queue and pending_ are single-
    // consumer by construction.
    assert(expected == self &&
           "Mailbox: pop from a thread other than the owning rank's — "
           "single-consumer invariant violated");
  }
#endif
}

void Mailbox::throw_deadlock(int source, int tag, double timeout_s) {
  // Name the blocked endpoint and every pending-but-unmatched message so
  // a mismatched send/recv pair is identifiable from the text.
  std::ostringstream detail;
  detail << "TeachMPI deadlock: rank "
         << (owner_rank_ >= 0 ? std::to_string(owner_rank_)
                              : std::string("?"))
         << " blocked in recv(";
  describe_endpoint(detail, "source", source);
  detail << ", ";
  describe_endpoint(detail, "tag", tag);
  detail << ") for " << timeout_s << "s; " << pending_.size()
         << " unmatched message(s) queued";
  if (!pending_.empty()) {
    detail << ":";
    constexpr std::size_t kMaxListed = 8;
    std::size_t listed = 0;
    for (const RawMessage& pending : pending_) {
      if (listed++ == kMaxListed) {
        detail << " ...";
        break;
      }
      detail << " (source=" << pending.source << ", tag=" << pending.tag
             << ", " << pending.payload.size() << "B)";
    }
  }
  detail << " — likely deadlock or mismatched send/recv";
  throw MpDeadlockError(detail.str());
}

bool Mailbox::pop_impl(int source, int tag, double timeout_s,
                       RawMessage* out, bool throw_on_timeout) {
  assert_single_consumer();
  util::require(!std::isnan(timeout_s),
                "Mailbox: receive timeout must not be NaN");
  const bool poll_only = timeout_s <= 0.0;
  const bool wait_forever = timeout_s >= kWaitForeverSeconds;
  std::chrono::steady_clock::time_point deadline{};
  if (!poll_only && !wait_forever) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(timeout_s));
  }
  const auto expired = [&] {
    return !wait_forever &&
           (poll_only || std::chrono::steady_clock::now() >= deadline);
  };

  for (;;) {
    if (abort_->aborted.load(std::memory_order_acquire)) {
      throw WorldAborted{};
    }
    drain_to_pending();
    if (take_pending(source, tag, out)) {
      return true;
    }
    if (expired()) {
      if (!throw_on_timeout) {
        return false;
      }
      throw_deadlock(source, tag, timeout_s);
    }
    // Nothing matching yet: wait for a push. Spin first — on a busy host
    // the sender is typically a yield away — then park on the condvar.
    bool activity = false;
    for (int spin = 0; spin < kMailboxSpins; ++spin) {
      if (queue_nonempty() ||
          abort_->aborted.load(std::memory_order_acquire)) {
        activity = true;
        break;
      }
      // The deadline check reads the clock; once per 64 yields keeps it
      // off the hot hand-over path (a yield is microseconds anyway, so
      // timeout precision is unaffected).
      if ((spin & 63) == 63 && expired()) {
        break;
      }
      std::this_thread::yield();
    }
    if (activity) {
      continue;
    }
    // Park. The flag must be raised before the predicate's queue check so
    // a sender that missed the flag is guaranteed to have pushed early
    // enough for the check (or an earlier spin probe) to see its message.
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    {
      std::unique_lock lk(park_mu_);
      const auto wakeup = [&] {
        return queue_nonempty() ||
               abort_->aborted.load(std::memory_order_acquire);
      };
      if (wait_forever) {
        park_cv_.wait(lk, wakeup);
      } else {
        park_cv_.wait_until(lk, deadline, wakeup);
      }
    }
    consumer_waiting_.store(false, std::memory_order_seq_cst);
    // Loop re-drains and re-checks abort/deadline whatever woke us.
  }
}

RawMessage Mailbox::pop_matching(int source, int tag) {
  RawMessage out;
  pop_impl(source, tag, timeout_s_, &out, /*throw_on_timeout=*/true);
  return out;
}

bool Mailbox::pop_matching_timed(int source, int tag, double timeout_s,
                                 RawMessage* out) {
  return pop_impl(source, tag, timeout_s, out, /*throw_on_timeout=*/false);
}

void Mailbox::interrupt() {
  // The world sets AbortState::aborted before calling this; the lock
  // section serializes with a parked consumer's predicate evaluation so
  // the wake cannot be lost, exactly like push's handshake.
  { std::lock_guard guard(park_mu_); }
  park_cv_.notify_one();
}

}  // namespace pblpar::mp
