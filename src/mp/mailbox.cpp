#include "mp/mailbox.hpp"

#include <chrono>
#include <sstream>

namespace pblpar::mp {

namespace {

constexpr int kAnyValue = -1;

bool matches(const RawMessage& message, int source, int tag) {
  return (source == kAnyValue || message.source == source) &&
         (tag == kAnyValue || message.tag == tag);
}

}  // namespace

void Mailbox::push(RawMessage message) {
  {
    std::lock_guard guard(mu_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

RawMessage Mailbox::pop_matching(int source, int tag) {
  std::unique_lock lk(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(timeout_s_));
  for (;;) {
    if (abort_->aborted.load()) {
      throw WorldAborted{};
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        RawMessage found = std::move(*it);
        queue_.erase(it);
        return found;
      }
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      std::ostringstream detail;
      detail << "TeachMPI: receive (source=" << source << ", tag=" << tag
             << ") timed out after " << timeout_s_
             << "s with " << queue_.size()
             << " unmatched message(s) queued — likely deadlock or "
                "mismatched send/recv";
      throw MpDeadlockError(detail.str());
    }
  }
}

void Mailbox::interrupt() {
  std::lock_guard guard(mu_);
  cv_.notify_all();
}

}  // namespace pblpar::mp
