#include "mp/mailbox.hpp"

#include <chrono>
#include <sstream>

namespace pblpar::mp {

namespace {

constexpr int kAnyValue = -1;

bool matches(const RawMessage& message, int source, int tag) {
  return (source == kAnyValue || message.source == source) &&
         (tag == kAnyValue || message.tag == tag);
}

void describe_endpoint(std::ostream& os, const char* label, int value) {
  if (value == kAnyValue) {
    os << label << "=ANY";
  } else {
    os << label << "=" << value;
  }
}

}  // namespace

void Mailbox::push(RawMessage message) {
  {
    std::lock_guard guard(mu_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

bool Mailbox::pop_impl(int source, int tag, double timeout_s,
                       RawMessage* out, bool throw_on_timeout) {
  std::unique_lock lk(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::duration<double>(timeout_s));
  for (;;) {
    if (abort_->aborted.load()) {
      throw WorldAborted{};
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        *out = std::move(*it);
        queue_.erase(it);
        return true;
      }
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      if (!throw_on_timeout) {
        return false;
      }
      // Name the blocked endpoint and every queued-but-unmatched message
      // so a mismatched send/recv pair is identifiable from the text.
      std::ostringstream detail;
      detail << "TeachMPI deadlock: rank "
             << (owner_rank_ >= 0 ? std::to_string(owner_rank_)
                                  : std::string("?"))
             << " blocked in recv(";
      describe_endpoint(detail, "source", source);
      detail << ", ";
      describe_endpoint(detail, "tag", tag);
      detail << ") for " << timeout_s << "s; " << queue_.size()
             << " unmatched message(s) queued";
      if (!queue_.empty()) {
        detail << ":";
        constexpr std::size_t kMaxListed = 8;
        std::size_t listed = 0;
        for (const RawMessage& pending : queue_) {
          if (listed++ == kMaxListed) {
            detail << " ...";
            break;
          }
          detail << " (source=" << pending.source << ", tag=" << pending.tag
                 << ", " << pending.payload.size() << "B)";
        }
      }
      detail << " — likely deadlock or mismatched send/recv";
      throw MpDeadlockError(detail.str());
    }
  }
}

RawMessage Mailbox::pop_matching(int source, int tag) {
  RawMessage out;
  pop_impl(source, tag, timeout_s_, &out, /*throw_on_timeout=*/true);
  return out;
}

bool Mailbox::pop_matching_timed(int source, int tag, double timeout_s,
                                 RawMessage* out) {
  return pop_impl(source, tag, timeout_s, out, /*throw_on_timeout=*/false);
}

void Mailbox::interrupt() {
  std::lock_guard guard(mu_);
  cv_.notify_all();
}

}  // namespace pblpar::mp
