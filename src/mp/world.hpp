#pragma once

#include <functional>

#include "mp/comm.hpp"

namespace pblpar::mp {

/// World configuration.
struct WorldOptions {
  /// How long a receive may block before the world declares deadlock.
  double recv_timeout_s = 10.0;
};

/// TeachMPI's MPI_Init/Finalize equivalent: run `rank_main` once per rank,
/// each on its own thread, sharing an in-process message fabric.
///
/// If any rank's body throws, the world aborts: blocked receives unwind,
/// all ranks join, and the first exception is rethrown to the caller.
class World {
 public:
  static void run(int num_ranks, const std::function<void(Comm&)>& rank_main,
                  WorldOptions options = {});
};

}  // namespace pblpar::mp
