#pragma once

#include <functional>

#include "mp/comm.hpp"

namespace pblpar::mp {

/// World configuration.
struct WorldOptions {
  /// How long a receive may block before the world declares deadlock.
  double recv_timeout_s = 10.0;

  /// Segment size for pipelined tree collectives. 0 (the default)
  /// disables segmentation on the host world: a frame is a refcounted
  /// pointer in shared memory, so forwarding the whole payload is free
  /// and splitting it only adds assembly copies. Set a size (e.g.
  /// 256 KiB) to exercise the segmented network protocol under real
  /// threads.
  std::size_t pipeline_segment_bytes = 0;

  /// Seeded transport-fault injection (drop / delay / duplicate /
  /// reorder per link), applied at the mailbox push boundary. Empty (the
  /// default) leaves the send path untouched. Validated loudly at world
  /// start when armed.
  TransportChaos chaos;
};

/// TeachMPI's MPI_Init/Finalize equivalent: run `rank_main` once per rank,
/// each on its own thread, sharing an in-process message fabric.
///
/// If any rank's body throws, the world aborts: blocked receives unwind,
/// all ranks join, and the first exception is rethrown to the caller.
class World {
 public:
  static void run(int num_ranks, const std::function<void(Comm&)>& rank_main,
                  WorldOptions options = {});
};

}  // namespace pblpar::mp
