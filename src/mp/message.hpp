#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <vector>

#include "mp/buffer.hpp"

namespace pblpar::mp {

/// Base of all TeachMPI errors.
class MpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A receive matched a message whose payload type differs from the
/// requested one.
class MpTypeError : public MpError {
 public:
  using MpError::MpError;
};

/// No matching message arrived within the world's receive timeout; in an
/// in-process world this is how deadlocks surface.
class MpDeadlockError : public MpError {
 public:
  using MpError::MpError;
};

/// A wire message: a refcounted payload buffer plus the type identity of
/// the payload so mismatched receives fail loudly instead of
/// reinterpreting memory. The payload is immutable once sent; moving a
/// RawMessage moves ownership of the bytes (pointer swap above the
/// inline threshold), so a message travels sender -> mailbox -> receiver
/// without its payload ever being duplicated.
struct RawMessage {
  int source = -1;
  int tag = 0;
  std::size_t type_hash = 0;
  Buffer payload;
};

/// Serialization for message payloads. Supported types: trivially
/// copyable values, std::string, and std::vector of trivially copyable
/// elements — enough for every exercise in the course while keeping the
/// wire format obvious to students reading the implementation.
///
/// Copy discipline: encode-from-lvalue and decode-to-value each perform
/// exactly one counted payload copy; encode-from-rvalue adopts the
/// container (zero copies), and view() reinterprets the received bytes
/// in place (zero copies, valid while the backing Buffer lives).
template <class T>
struct Codec {
  static_assert(std::is_trivially_copyable_v<T>,
                "TeachMPI payloads must be trivially copyable, std::string, "
                "or std::vector of trivially copyable elements");

  static Buffer encode(const T& value) {
    Buffer bytes = Buffer::uninitialized(sizeof(T));
    detail::copy_payload(bytes.mutable_data(), &value, sizeof(T));
    return bytes;
  }

  static T decode(ByteView bytes) {
    if (bytes.size() != sizeof(T)) {
      throw MpTypeError("TeachMPI: payload size mismatch for scalar type");
    }
    T value;
    detail::copy_payload(&value, bytes.data(), sizeof(T));
    return value;
  }
};

template <class U>
struct Codec<std::vector<U>> {
  static_assert(std::is_trivially_copyable_v<U>,
                "TeachMPI vector payload elements must be trivially copyable");

  static Buffer encode(const std::vector<U>& values) {
    Buffer bytes = Buffer::uninitialized(values.size() * sizeof(U));
    detail::copy_payload(bytes.mutable_data(), values.data(), bytes.size());
    return bytes;
  }

  /// Move-of-ownership encode: the vector's heap block becomes the
  /// payload, no bytes are copied.
  static Buffer encode(std::vector<U>&& values) {
    return Buffer::adopt(std::move(values));
  }

  static std::vector<U> decode(ByteView bytes) {
    std::vector<U> values(view(bytes).size());
    detail::copy_payload(values.data(), bytes.data(), bytes.size());
    return values;
  }

  /// Zero-copy typed view over the payload bytes. The backing buffer
  /// must outlive the view.
  static std::span<const U> view(ByteView bytes) {
    if (bytes.size() % sizeof(U) != 0) {
      throw MpTypeError("TeachMPI: payload size mismatch for vector type");
    }
    if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(U) != 0) {
      // Whole-message payloads are always max_align_t aligned; only a
      // hand-made unaligned slice can land here.
      throw MpError("TeachMPI: payload view is misaligned for element type");
    }
    return std::span<const U>(reinterpret_cast<const U*>(bytes.data()),
                              bytes.size() / sizeof(U));
  }
};

template <>
struct Codec<std::string> {
  static Buffer encode(const std::string& text) {
    Buffer bytes = Buffer::uninitialized(text.size());
    detail::copy_payload(bytes.mutable_data(), text.data(), text.size());
    return bytes;
  }

  static Buffer encode(std::string&& text) {
    return Buffer::adopt(std::move(text));
  }

  static std::string decode(ByteView bytes) {
    if (bytes.empty()) {
      // bytes.data() may be null for an empty payload; std::string(ptr,
      // 0) with a null ptr is undefined behaviour.
      return std::string();
    }
    detail::note_payload_copy(bytes.size());
    return std::string(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size());
  }
};

/// Stable per-type identity used to verify matched receives.
template <class T>
std::size_t type_hash_of() {
  return typeid(T).hash_code();
}

/// A typed zero-copy window over a received vector payload: owns (a
/// refcount on) the message buffer and exposes the elements in place.
template <class U>
class PayloadView {
 public:
  PayloadView() = default;
  explicit PayloadView(Buffer buffer) : buffer_(std::move(buffer)) {
    (void)values();  // validate size/alignment up front
  }

  // The span is recomputed from the owned buffer so inline-storage
  // payloads stay valid across moves of the view.
  std::span<const U> values() const {
    return Codec<std::vector<U>>::view(buffer_.view());
  }
  std::size_t size() const { return buffer_.size() / sizeof(U); }
  bool empty() const { return buffer_.empty(); }
  const U& operator[](std::size_t i) const { return values()[i]; }
  const U* begin() const { return values().data(); }
  const U* end() const { return values().data() + size(); }
  const Buffer& buffer() const { return buffer_; }

 private:
  Buffer buffer_;
};

}  // namespace pblpar::mp
