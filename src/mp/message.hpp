#pragma once

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <vector>

namespace pblpar::mp {

/// Base of all TeachMPI errors.
class MpError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A receive matched a message whose payload type differs from the
/// requested one.
class MpTypeError : public MpError {
 public:
  using MpError::MpError;
};

/// No matching message arrived within the world's receive timeout; in an
/// in-process world this is how deadlocks surface.
class MpDeadlockError : public MpError {
 public:
  using MpError::MpError;
};

/// A wire message: flat bytes plus the type identity of the payload so
/// mismatched receives fail loudly instead of reinterpreting memory.
struct RawMessage {
  int source = -1;
  int tag = 0;
  std::size_t type_hash = 0;
  std::vector<std::byte> payload;
};

/// Serialization for message payloads. Supported types: trivially
/// copyable values, std::string, and std::vector of trivially copyable
/// elements — enough for every exercise in the course while keeping the
/// wire format obvious to students reading the implementation.
template <class T>
struct Codec {
  static_assert(std::is_trivially_copyable_v<T>,
                "TeachMPI payloads must be trivially copyable, std::string, "
                "or std::vector of trivially copyable elements");

  static std::vector<std::byte> encode(const T& value) {
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    return bytes;
  }

  static T decode(const std::vector<std::byte>& bytes) {
    if (bytes.size() != sizeof(T)) {
      throw MpTypeError("TeachMPI: payload size mismatch for scalar type");
    }
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }
};

template <class U>
struct Codec<std::vector<U>> {
  static_assert(std::is_trivially_copyable_v<U>,
                "TeachMPI vector payload elements must be trivially copyable");

  static std::vector<std::byte> encode(const std::vector<U>& values) {
    std::vector<std::byte> bytes(values.size() * sizeof(U));
    if (!values.empty()) {
      std::memcpy(bytes.data(), values.data(), bytes.size());
    }
    return bytes;
  }

  static std::vector<U> decode(const std::vector<std::byte>& bytes) {
    if (bytes.size() % sizeof(U) != 0) {
      throw MpTypeError("TeachMPI: payload size mismatch for vector type");
    }
    std::vector<U> values(bytes.size() / sizeof(U));
    if (!values.empty()) {
      std::memcpy(values.data(), bytes.data(), bytes.size());
    }
    return values;
  }
};

template <>
struct Codec<std::string> {
  static std::vector<std::byte> encode(const std::string& text) {
    std::vector<std::byte> bytes(text.size());
    if (!text.empty()) {
      std::memcpy(bytes.data(), text.data(), text.size());
    }
    return bytes;
  }

  static std::string decode(const std::vector<std::byte>& bytes) {
    return std::string(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size());
  }
};

/// Stable per-type identity used to verify matched receives.
template <class T>
std::size_t type_hash_of() {
  return typeid(T).hash_code();
}

}  // namespace pblpar::mp
