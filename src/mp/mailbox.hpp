#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "mp/message.hpp"

namespace pblpar::mp {

/// Internal unwinding signal when the world aborts (a rank threw).
class WorldAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "pblpar::mp::WorldAborted: world is shutting down";
  }
};

/// Shared shutdown flag for all mailboxes of a world.
struct AbortState {
  std::atomic<bool> aborted{false};
};

/// One rank's incoming message queue. Senders push; the owning rank pops
/// the first message matching (source, tag), preserving per-(source, tag)
/// FIFO order as MPI requires.
class Mailbox {
 public:
  Mailbox(AbortState& abort, double timeout_s)
      : abort_(&abort), timeout_s_(timeout_s) {}

  /// Deliver a message (called by the sending rank's thread).
  void push(RawMessage message);

  /// Block until a message matching (source, tag) is available and return
  /// it. Pass kAnySource / kAnyTag (-1) as wildcards. Throws
  /// MpDeadlockError on timeout and WorldAborted when the world aborts.
  RawMessage pop_matching(int source, int tag);

  /// Wake any blocked pop (used on abort).
  void interrupt();

 private:
  AbortState* abort_;
  double timeout_s_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<RawMessage> queue_;
};

}  // namespace pblpar::mp
