#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "mp/message.hpp"

namespace pblpar::mp {

/// Internal unwinding signal when the world aborts (a rank threw).
class WorldAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "pblpar::mp::WorldAborted: world is shutting down";
  }
};

/// Shared shutdown flag for all mailboxes of a world.
struct AbortState {
  std::atomic<bool> aborted{false};
};

/// One rank's incoming message queue. Senders push; the owning rank pops
/// the first message matching (source, tag), preserving per-(source, tag)
/// FIFO order as MPI requires.
///
/// Single-consumer invariant: only the thread running the owning rank
/// (`owner_rank_`) may call pop_matching / pop_matching_timed. Any rank's
/// thread may push concurrently. Debug builds assert the invariant by
/// remembering the first popping thread.
///
/// Implementation: an intrusive lock-free MPSC queue in Vyukov's style.
/// A sender allocates a node, swings the shared `head_` to it with one
/// atomic exchange (this is the total arrival order), and links the
/// previous head to it with a release store; push never takes a lock.
/// The consumer follows `next` pointers from its private `tail_` (a stub
/// node) and moves messages into `pending_`, a consumer-local list where
/// (source, tag) matching happens — keeping matching out of the shared
/// structure is what preserves per-(source, tag) FIFO order without any
/// consumer-side CAS. Blocking is consumer-only: the condvar and its
/// mutex are touched by a sender only when the consumer has declared
/// itself parked via `consumer_waiting_` (Dekker-style seq_cst
/// store/load), so the message fast path stays lock-free.
class Mailbox {
 public:
  Mailbox(AbortState& abort, double timeout_s, int owner_rank = -1);
  ~Mailbox();
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Deliver a message (called by the sending rank's thread). Lock-free.
  void push(RawMessage message);

  /// Block until a message matching (source, tag) is available and return
  /// it. Pass kAnySource / kAnyTag (-1) as wildcards. Throws
  /// MpDeadlockError on timeout and WorldAborted when the world aborts.
  RawMessage pop_matching(int source, int tag);

  /// Like pop_matching but with a caller-supplied timeout: returns true
  /// and fills *out when a match arrives within `timeout_s`, false on
  /// timeout (no exception). Still throws WorldAborted on abort. A zero
  /// or negative timeout is a non-blocking poll; a timeout of ~3 years or
  /// more (including +infinity) waits forever; NaN is rejected loudly.
  bool pop_matching_timed(int source, int tag, double timeout_s,
                          RawMessage* out);

  /// Wake a blocked pop (used on abort, after AbortState::aborted is set).
  void interrupt();

 private:
  /// One queued message. `next` is null until the sender links it —
  /// a consumer seeing head_ != tail_ with a null next is observing the
  /// sender's two-instruction push window and spins it out.
  struct Node {
    std::atomic<Node*> next{nullptr};
    RawMessage message;
  };

  bool pop_impl(int source, int tag, double timeout_s, RawMessage* out,
                bool throw_on_timeout);
  /// Move every linked node's message into pending_ (consumer only).
  void drain_to_pending();
  /// Pop the earliest pending message matching (source, tag).
  bool take_pending(int source, int tag, RawMessage* out);
  /// True when at least one push has landed since the last full drain.
  bool queue_nonempty() const;
  void assert_single_consumer();
  [[noreturn]] void throw_deadlock(int source, int tag, double timeout_s);

  AbortState* abort_;
  double timeout_s_;
  int owner_rank_;

  std::atomic<Node*> head_;  // most recently pushed node (shared)
  Node* tail_;               // consumer-private; stub/last-consumed node

  /// Drained-but-unmatched messages in arrival order (consumer-private).
  std::deque<RawMessage> pending_;

  /// Consumer parking. consumer_waiting_ is the Dekker flag: a sender
  /// takes park_mu_/park_cv_ only when it reads the flag as true, so an
  /// unblocked consumer costs senders one seq_cst load, not a lock.
  std::atomic<bool> consumer_waiting_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;

#ifndef NDEBUG
  /// First thread that popped; all later pops must be the same thread.
  std::atomic<std::thread::id> consumer_id_{};
#endif
};

}  // namespace pblpar::mp
