#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "mp/message.hpp"

namespace pblpar::mp {

/// Internal unwinding signal when the world aborts (a rank threw).
class WorldAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "pblpar::mp::WorldAborted: world is shutting down";
  }
};

/// Shared shutdown flag for all mailboxes of a world.
struct AbortState {
  std::atomic<bool> aborted{false};
};

/// One rank's incoming message queue. Senders push; the owning rank pops
/// the first message matching (source, tag), preserving per-(source, tag)
/// FIFO order as MPI requires.
class Mailbox {
 public:
  Mailbox(AbortState& abort, double timeout_s, int owner_rank = -1)
      : abort_(&abort), timeout_s_(timeout_s), owner_rank_(owner_rank) {}

  /// Deliver a message (called by the sending rank's thread).
  void push(RawMessage message);

  /// Block until a message matching (source, tag) is available and return
  /// it. Pass kAnySource / kAnyTag (-1) as wildcards. Throws
  /// MpDeadlockError on timeout and WorldAborted when the world aborts.
  RawMessage pop_matching(int source, int tag);

  /// Like pop_matching but with a caller-supplied timeout: returns true
  /// and fills *out when a match arrives within `timeout_s`, false on
  /// timeout (no exception). Still throws WorldAborted on abort.
  bool pop_matching_timed(int source, int tag, double timeout_s,
                          RawMessage* out);

  /// Wake any blocked pop (used on abort).
  void interrupt();

 private:
  bool pop_impl(int source, int tag, double timeout_s, RawMessage* out,
                bool throw_on_timeout);

  AbortState* abort_;
  double timeout_s_;
  int owner_rank_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<RawMessage> queue_;
};

}  // namespace pblpar::mp
