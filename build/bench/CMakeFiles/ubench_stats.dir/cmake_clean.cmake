file(REMOVE_RECURSE
  "CMakeFiles/ubench_stats.dir/ubench_stats.cpp.o"
  "CMakeFiles/ubench_stats.dir/ubench_stats.cpp.o.d"
  "ubench_stats"
  "ubench_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
