# Empty dependencies file for ubench_stats.
# This may be replaced when dependencies are built.
