file(REMOVE_RECURSE
  "CMakeFiles/ubench_rt.dir/ubench_rt.cpp.o"
  "CMakeFiles/ubench_rt.dir/ubench_rt.cpp.o.d"
  "ubench_rt"
  "ubench_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
