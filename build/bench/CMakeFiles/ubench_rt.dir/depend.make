# Empty dependencies file for ubench_rt.
# This may be replaced when dependencies are built.
