# Empty dependencies file for ubench_mapreduce.
# This may be replaced when dependencies are built.
