file(REMOVE_RECURSE
  "CMakeFiles/ubench_mapreduce.dir/ubench_mapreduce.cpp.o"
  "CMakeFiles/ubench_mapreduce.dir/ubench_mapreduce.cpp.o.d"
  "ubench_mapreduce"
  "ubench_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
