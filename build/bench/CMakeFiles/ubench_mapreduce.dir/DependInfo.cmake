
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ubench_mapreduce.cpp" "bench/CMakeFiles/ubench_mapreduce.dir/ubench_mapreduce.cpp.o" "gcc" "bench/CMakeFiles/ubench_mapreduce.dir/ubench_mapreduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mp/CMakeFiles/pblpar_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/classroom/CMakeFiles/pblpar_classroom.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pblpar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/pblpar_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/course/CMakeFiles/pblpar_course.dir/DependInfo.cmake"
  "/root/repo/build/src/patternlets/CMakeFiles/pblpar_patternlets.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/pblpar_race.dir/DependInfo.cmake"
  "/root/repo/build/src/drugdesign/CMakeFiles/pblpar_drugdesign.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/pblpar_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pblpar_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pblpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sbc/CMakeFiles/pblpar_sbc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pblpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
