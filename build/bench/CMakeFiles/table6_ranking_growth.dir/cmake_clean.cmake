file(REMOVE_RECURSE
  "CMakeFiles/table6_ranking_growth.dir/table6_ranking_growth.cpp.o"
  "CMakeFiles/table6_ranking_growth.dir/table6_ranking_growth.cpp.o.d"
  "table6_ranking_growth"
  "table6_ranking_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ranking_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
