# Empty compiler generated dependencies file for table6_ranking_growth.
# This may be replaced when dependencies are built.
