# Empty dependencies file for exp_future_mpi.
# This may be replaced when dependencies are built.
