file(REMOVE_RECURSE
  "CMakeFiles/exp_future_mpi.dir/exp_future_mpi.cpp.o"
  "CMakeFiles/exp_future_mpi.dir/exp_future_mpi.cpp.o.d"
  "exp_future_mpi"
  "exp_future_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_future_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
