file(REMOVE_RECURSE
  "CMakeFiles/table3_cohens_d_growth.dir/table3_cohens_d_growth.cpp.o"
  "CMakeFiles/table3_cohens_d_growth.dir/table3_cohens_d_growth.cpp.o.d"
  "table3_cohens_d_growth"
  "table3_cohens_d_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cohens_d_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
