# Empty compiler generated dependencies file for table3_cohens_d_growth.
# This may be replaced when dependencies are built.
