# Empty compiler generated dependencies file for table2_cohens_d_emphasis.
# This may be replaced when dependencies are built.
