file(REMOVE_RECURSE
  "CMakeFiles/table2_cohens_d_emphasis.dir/table2_cohens_d_emphasis.cpp.o"
  "CMakeFiles/table2_cohens_d_emphasis.dir/table2_cohens_d_emphasis.cpp.o.d"
  "table2_cohens_d_emphasis"
  "table2_cohens_d_emphasis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cohens_d_emphasis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
