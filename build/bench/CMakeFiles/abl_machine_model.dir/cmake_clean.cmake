file(REMOVE_RECURSE
  "CMakeFiles/abl_machine_model.dir/abl_machine_model.cpp.o"
  "CMakeFiles/abl_machine_model.dir/abl_machine_model.cpp.o.d"
  "abl_machine_model"
  "abl_machine_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_machine_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
