# Empty dependencies file for abl_machine_model.
# This may be replaced when dependencies are built.
