# Empty compiler generated dependencies file for exp_assignment4_patterns.
# This may be replaced when dependencies are built.
