file(REMOVE_RECURSE
  "CMakeFiles/exp_assignment4_patterns.dir/exp_assignment4_patterns.cpp.o"
  "CMakeFiles/exp_assignment4_patterns.dir/exp_assignment4_patterns.cpp.o.d"
  "exp_assignment4_patterns"
  "exp_assignment4_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_assignment4_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
