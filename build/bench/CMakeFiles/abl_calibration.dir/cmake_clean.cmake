file(REMOVE_RECURSE
  "CMakeFiles/abl_calibration.dir/abl_calibration.cpp.o"
  "CMakeFiles/abl_calibration.dir/abl_calibration.cpp.o.d"
  "abl_calibration"
  "abl_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
