# Empty compiler generated dependencies file for exp_assignment3_scheduling.
# This may be replaced when dependencies are built.
