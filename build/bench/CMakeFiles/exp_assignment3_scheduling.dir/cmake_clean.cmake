file(REMOVE_RECURSE
  "CMakeFiles/exp_assignment3_scheduling.dir/exp_assignment3_scheduling.cpp.o"
  "CMakeFiles/exp_assignment3_scheduling.dir/exp_assignment3_scheduling.cpp.o.d"
  "exp_assignment3_scheduling"
  "exp_assignment3_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_assignment3_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
