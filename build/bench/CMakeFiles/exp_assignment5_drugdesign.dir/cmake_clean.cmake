file(REMOVE_RECURSE
  "CMakeFiles/exp_assignment5_drugdesign.dir/exp_assignment5_drugdesign.cpp.o"
  "CMakeFiles/exp_assignment5_drugdesign.dir/exp_assignment5_drugdesign.cpp.o.d"
  "exp_assignment5_drugdesign"
  "exp_assignment5_drugdesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_assignment5_drugdesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
