# Empty compiler generated dependencies file for exp_assignment5_drugdesign.
# This may be replaced when dependencies are built.
