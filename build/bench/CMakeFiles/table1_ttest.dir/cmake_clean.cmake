file(REMOVE_RECURSE
  "CMakeFiles/table1_ttest.dir/table1_ttest.cpp.o"
  "CMakeFiles/table1_ttest.dir/table1_ttest.cpp.o.d"
  "table1_ttest"
  "table1_ttest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ttest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
