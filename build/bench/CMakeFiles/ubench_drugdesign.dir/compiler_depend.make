# Empty compiler generated dependencies file for ubench_drugdesign.
# This may be replaced when dependencies are built.
