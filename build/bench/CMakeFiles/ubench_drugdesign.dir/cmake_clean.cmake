file(REMOVE_RECURSE
  "CMakeFiles/ubench_drugdesign.dir/ubench_drugdesign.cpp.o"
  "CMakeFiles/ubench_drugdesign.dir/ubench_drugdesign.cpp.o.d"
  "ubench_drugdesign"
  "ubench_drugdesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_drugdesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
