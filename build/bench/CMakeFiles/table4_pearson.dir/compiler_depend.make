# Empty compiler generated dependencies file for table4_pearson.
# This may be replaced when dependencies are built.
