file(REMOVE_RECURSE
  "CMakeFiles/table4_pearson.dir/table4_pearson.cpp.o"
  "CMakeFiles/table4_pearson.dir/table4_pearson.cpp.o.d"
  "table4_pearson"
  "table4_pearson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pearson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
