file(REMOVE_RECURSE
  "CMakeFiles/abl_team_formation.dir/abl_team_formation.cpp.o"
  "CMakeFiles/abl_team_formation.dir/abl_team_formation.cpp.o.d"
  "abl_team_formation"
  "abl_team_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_team_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
