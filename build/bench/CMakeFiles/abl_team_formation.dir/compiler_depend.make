# Empty compiler generated dependencies file for abl_team_formation.
# This may be replaced when dependencies are built.
