# Empty dependencies file for ubench_openmp_parity.
# This may be replaced when dependencies are built.
