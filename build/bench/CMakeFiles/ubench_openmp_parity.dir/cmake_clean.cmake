file(REMOVE_RECURSE
  "CMakeFiles/ubench_openmp_parity.dir/ubench_openmp_parity.cpp.o"
  "CMakeFiles/ubench_openmp_parity.dir/ubench_openmp_parity.cpp.o.d"
  "ubench_openmp_parity"
  "ubench_openmp_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_openmp_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
