# Empty dependencies file for abl_seed_sensitivity.
# This may be replaced when dependencies are built.
