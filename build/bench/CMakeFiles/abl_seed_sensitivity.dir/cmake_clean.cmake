file(REMOVE_RECURSE
  "CMakeFiles/abl_seed_sensitivity.dir/abl_seed_sensitivity.cpp.o"
  "CMakeFiles/abl_seed_sensitivity.dir/abl_seed_sensitivity.cpp.o.d"
  "abl_seed_sensitivity"
  "abl_seed_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_seed_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
