file(REMOVE_RECURSE
  "CMakeFiles/exp_architecture_qna.dir/exp_architecture_qna.cpp.o"
  "CMakeFiles/exp_architecture_qna.dir/exp_architecture_qna.cpp.o.d"
  "exp_architecture_qna"
  "exp_architecture_qna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_architecture_qna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
