# Empty compiler generated dependencies file for exp_architecture_qna.
# This may be replaced when dependencies are built.
