file(REMOVE_RECURSE
  "CMakeFiles/ubench_race.dir/ubench_race.cpp.o"
  "CMakeFiles/ubench_race.dir/ubench_race.cpp.o.d"
  "ubench_race"
  "ubench_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
