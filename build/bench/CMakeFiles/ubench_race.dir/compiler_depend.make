# Empty compiler generated dependencies file for ubench_race.
# This may be replaced when dependencies are built.
