file(REMOVE_RECURSE
  "CMakeFiles/fig1_timeline.dir/fig1_timeline.cpp.o"
  "CMakeFiles/fig1_timeline.dir/fig1_timeline.cpp.o.d"
  "fig1_timeline"
  "fig1_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
