file(REMOVE_RECURSE
  "CMakeFiles/table5_ranking_emphasis.dir/table5_ranking_emphasis.cpp.o"
  "CMakeFiles/table5_ranking_emphasis.dir/table5_ranking_emphasis.cpp.o.d"
  "table5_ranking_emphasis"
  "table5_ranking_emphasis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ranking_emphasis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
