# Empty dependencies file for table5_ranking_emphasis.
# This may be replaced when dependencies are built.
