file(REMOVE_RECURSE
  "CMakeFiles/fig2_survey.dir/fig2_survey.cpp.o"
  "CMakeFiles/fig2_survey.dir/fig2_survey.cpp.o.d"
  "fig2_survey"
  "fig2_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
