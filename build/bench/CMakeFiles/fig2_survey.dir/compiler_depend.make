# Empty compiler generated dependencies file for fig2_survey.
# This may be replaced when dependencies are built.
