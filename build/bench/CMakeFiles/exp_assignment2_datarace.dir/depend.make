# Empty dependencies file for exp_assignment2_datarace.
# This may be replaced when dependencies are built.
