file(REMOVE_RECURSE
  "CMakeFiles/exp_assignment2_datarace.dir/exp_assignment2_datarace.cpp.o"
  "CMakeFiles/exp_assignment2_datarace.dir/exp_assignment2_datarace.cpp.o.d"
  "exp_assignment2_datarace"
  "exp_assignment2_datarace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_assignment2_datarace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
