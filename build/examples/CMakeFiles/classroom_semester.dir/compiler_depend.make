# Empty compiler generated dependencies file for classroom_semester.
# This may be replaced when dependencies are built.
