file(REMOVE_RECURSE
  "CMakeFiles/classroom_semester.dir/classroom_semester.cpp.o"
  "CMakeFiles/classroom_semester.dir/classroom_semester.cpp.o.d"
  "classroom_semester"
  "classroom_semester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classroom_semester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
