# Empty dependencies file for classroom_semester.
# This may be replaced when dependencies are built.
