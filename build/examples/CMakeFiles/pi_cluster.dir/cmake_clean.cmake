file(REMOVE_RECURSE
  "CMakeFiles/pi_cluster.dir/pi_cluster.cpp.o"
  "CMakeFiles/pi_cluster.dir/pi_cluster.cpp.o.d"
  "pi_cluster"
  "pi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
