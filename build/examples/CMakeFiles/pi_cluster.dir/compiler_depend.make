# Empty compiler generated dependencies file for pi_cluster.
# This may be replaced when dependencies are built.
