file(REMOVE_RECURSE
  "CMakeFiles/drug_design.dir/drug_design.cpp.o"
  "CMakeFiles/drug_design.dir/drug_design.cpp.o.d"
  "drug_design"
  "drug_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
