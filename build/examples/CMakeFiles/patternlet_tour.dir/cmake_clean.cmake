file(REMOVE_RECURSE
  "CMakeFiles/patternlet_tour.dir/patternlet_tour.cpp.o"
  "CMakeFiles/patternlet_tour.dir/patternlet_tour.cpp.o.d"
  "patternlet_tour"
  "patternlet_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patternlet_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
