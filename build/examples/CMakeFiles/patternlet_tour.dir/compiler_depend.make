# Empty compiler generated dependencies file for patternlet_tour.
# This may be replaced when dependencies are built.
