file(REMOVE_RECURSE
  "CMakeFiles/pblpar_course.dir/assignments.cpp.o"
  "CMakeFiles/pblpar_course.dir/assignments.cpp.o.d"
  "CMakeFiles/pblpar_course.dir/grading.cpp.o"
  "CMakeFiles/pblpar_course.dir/grading.cpp.o.d"
  "CMakeFiles/pblpar_course.dir/outcomes.cpp.o"
  "CMakeFiles/pblpar_course.dir/outcomes.cpp.o.d"
  "CMakeFiles/pblpar_course.dir/student.cpp.o"
  "CMakeFiles/pblpar_course.dir/student.cpp.o.d"
  "CMakeFiles/pblpar_course.dir/teams.cpp.o"
  "CMakeFiles/pblpar_course.dir/teams.cpp.o.d"
  "CMakeFiles/pblpar_course.dir/timeline.cpp.o"
  "CMakeFiles/pblpar_course.dir/timeline.cpp.o.d"
  "libpblpar_course.a"
  "libpblpar_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
