file(REMOVE_RECURSE
  "libpblpar_course.a"
)
