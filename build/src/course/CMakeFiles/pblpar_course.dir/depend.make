# Empty dependencies file for pblpar_course.
# This may be replaced when dependencies are built.
