
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/course/assignments.cpp" "src/course/CMakeFiles/pblpar_course.dir/assignments.cpp.o" "gcc" "src/course/CMakeFiles/pblpar_course.dir/assignments.cpp.o.d"
  "/root/repo/src/course/grading.cpp" "src/course/CMakeFiles/pblpar_course.dir/grading.cpp.o" "gcc" "src/course/CMakeFiles/pblpar_course.dir/grading.cpp.o.d"
  "/root/repo/src/course/outcomes.cpp" "src/course/CMakeFiles/pblpar_course.dir/outcomes.cpp.o" "gcc" "src/course/CMakeFiles/pblpar_course.dir/outcomes.cpp.o.d"
  "/root/repo/src/course/student.cpp" "src/course/CMakeFiles/pblpar_course.dir/student.cpp.o" "gcc" "src/course/CMakeFiles/pblpar_course.dir/student.cpp.o.d"
  "/root/repo/src/course/teams.cpp" "src/course/CMakeFiles/pblpar_course.dir/teams.cpp.o" "gcc" "src/course/CMakeFiles/pblpar_course.dir/teams.cpp.o.d"
  "/root/repo/src/course/timeline.cpp" "src/course/CMakeFiles/pblpar_course.dir/timeline.cpp.o" "gcc" "src/course/CMakeFiles/pblpar_course.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pblpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
