# Empty compiler generated dependencies file for pblpar_patternlets.
# This may be replaced when dependencies are built.
