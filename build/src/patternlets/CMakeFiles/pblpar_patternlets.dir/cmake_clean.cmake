file(REMOVE_RECURSE
  "CMakeFiles/pblpar_patternlets.dir/patternlets.cpp.o"
  "CMakeFiles/pblpar_patternlets.dir/patternlets.cpp.o.d"
  "libpblpar_patternlets.a"
  "libpblpar_patternlets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_patternlets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
