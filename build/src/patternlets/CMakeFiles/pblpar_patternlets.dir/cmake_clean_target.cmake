file(REMOVE_RECURSE
  "libpblpar_patternlets.a"
)
