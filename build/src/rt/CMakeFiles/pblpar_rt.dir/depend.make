# Empty dependencies file for pblpar_rt.
# This may be replaced when dependencies are built.
