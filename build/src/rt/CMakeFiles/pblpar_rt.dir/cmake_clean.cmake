file(REMOVE_RECURSE
  "CMakeFiles/pblpar_rt.dir/host_backend.cpp.o"
  "CMakeFiles/pblpar_rt.dir/host_backend.cpp.o.d"
  "CMakeFiles/pblpar_rt.dir/loops.cpp.o"
  "CMakeFiles/pblpar_rt.dir/loops.cpp.o.d"
  "CMakeFiles/pblpar_rt.dir/parallel.cpp.o"
  "CMakeFiles/pblpar_rt.dir/parallel.cpp.o.d"
  "CMakeFiles/pblpar_rt.dir/sim_backend.cpp.o"
  "CMakeFiles/pblpar_rt.dir/sim_backend.cpp.o.d"
  "libpblpar_rt.a"
  "libpblpar_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
