file(REMOVE_RECURSE
  "libpblpar_rt.a"
)
