file(REMOVE_RECURSE
  "CMakeFiles/pblpar_mp.dir/comm.cpp.o"
  "CMakeFiles/pblpar_mp.dir/comm.cpp.o.d"
  "CMakeFiles/pblpar_mp.dir/mailbox.cpp.o"
  "CMakeFiles/pblpar_mp.dir/mailbox.cpp.o.d"
  "CMakeFiles/pblpar_mp.dir/sim_world.cpp.o"
  "CMakeFiles/pblpar_mp.dir/sim_world.cpp.o.d"
  "CMakeFiles/pblpar_mp.dir/world.cpp.o"
  "CMakeFiles/pblpar_mp.dir/world.cpp.o.d"
  "libpblpar_mp.a"
  "libpblpar_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
