file(REMOVE_RECURSE
  "libpblpar_mp.a"
)
