# Empty dependencies file for pblpar_mp.
# This may be replaced when dependencies are built.
