file(REMOVE_RECURSE
  "CMakeFiles/pblpar_util.dir/rng.cpp.o"
  "CMakeFiles/pblpar_util.dir/rng.cpp.o.d"
  "CMakeFiles/pblpar_util.dir/table.cpp.o"
  "CMakeFiles/pblpar_util.dir/table.cpp.o.d"
  "CMakeFiles/pblpar_util.dir/text.cpp.o"
  "CMakeFiles/pblpar_util.dir/text.cpp.o.d"
  "libpblpar_util.a"
  "libpblpar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
