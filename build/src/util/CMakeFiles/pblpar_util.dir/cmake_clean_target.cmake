file(REMOVE_RECURSE
  "libpblpar_util.a"
)
