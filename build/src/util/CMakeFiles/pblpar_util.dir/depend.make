# Empty dependencies file for pblpar_util.
# This may be replaced when dependencies are built.
