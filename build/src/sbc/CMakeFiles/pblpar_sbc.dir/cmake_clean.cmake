file(REMOVE_RECURSE
  "CMakeFiles/pblpar_sbc.dir/architecture.cpp.o"
  "CMakeFiles/pblpar_sbc.dir/architecture.cpp.o.d"
  "libpblpar_sbc.a"
  "libpblpar_sbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_sbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
