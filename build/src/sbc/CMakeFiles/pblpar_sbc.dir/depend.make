# Empty dependencies file for pblpar_sbc.
# This may be replaced when dependencies are built.
