file(REMOVE_RECURSE
  "libpblpar_sbc.a"
)
