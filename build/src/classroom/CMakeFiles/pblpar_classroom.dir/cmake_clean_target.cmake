file(REMOVE_RECURSE
  "libpblpar_classroom.a"
)
