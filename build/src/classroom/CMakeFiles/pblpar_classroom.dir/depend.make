# Empty dependencies file for pblpar_classroom.
# This may be replaced when dependencies are built.
