
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classroom/analysis.cpp" "src/classroom/CMakeFiles/pblpar_classroom.dir/analysis.cpp.o" "gcc" "src/classroom/CMakeFiles/pblpar_classroom.dir/analysis.cpp.o.d"
  "/root/repo/src/classroom/calibrate.cpp" "src/classroom/CMakeFiles/pblpar_classroom.dir/calibrate.cpp.o" "gcc" "src/classroom/CMakeFiles/pblpar_classroom.dir/calibrate.cpp.o.d"
  "/root/repo/src/classroom/model.cpp" "src/classroom/CMakeFiles/pblpar_classroom.dir/model.cpp.o" "gcc" "src/classroom/CMakeFiles/pblpar_classroom.dir/model.cpp.o.d"
  "/root/repo/src/classroom/study.cpp" "src/classroom/CMakeFiles/pblpar_classroom.dir/study.cpp.o" "gcc" "src/classroom/CMakeFiles/pblpar_classroom.dir/study.cpp.o.d"
  "/root/repo/src/classroom/targets.cpp" "src/classroom/CMakeFiles/pblpar_classroom.dir/targets.cpp.o" "gcc" "src/classroom/CMakeFiles/pblpar_classroom.dir/targets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/survey/CMakeFiles/pblpar_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/course/CMakeFiles/pblpar_course.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pblpar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pblpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
