file(REMOVE_RECURSE
  "CMakeFiles/pblpar_classroom.dir/analysis.cpp.o"
  "CMakeFiles/pblpar_classroom.dir/analysis.cpp.o.d"
  "CMakeFiles/pblpar_classroom.dir/calibrate.cpp.o"
  "CMakeFiles/pblpar_classroom.dir/calibrate.cpp.o.d"
  "CMakeFiles/pblpar_classroom.dir/model.cpp.o"
  "CMakeFiles/pblpar_classroom.dir/model.cpp.o.d"
  "CMakeFiles/pblpar_classroom.dir/study.cpp.o"
  "CMakeFiles/pblpar_classroom.dir/study.cpp.o.d"
  "CMakeFiles/pblpar_classroom.dir/targets.cpp.o"
  "CMakeFiles/pblpar_classroom.dir/targets.cpp.o.d"
  "libpblpar_classroom.a"
  "libpblpar_classroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_classroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
