file(REMOVE_RECURSE
  "libpblpar_sim.a"
)
