# Empty dependencies file for pblpar_sim.
# This may be replaced when dependencies are built.
