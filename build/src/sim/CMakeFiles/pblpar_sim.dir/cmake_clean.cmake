file(REMOVE_RECURSE
  "CMakeFiles/pblpar_sim.dir/machine.cpp.o"
  "CMakeFiles/pblpar_sim.dir/machine.cpp.o.d"
  "CMakeFiles/pblpar_sim.dir/report.cpp.o"
  "CMakeFiles/pblpar_sim.dir/report.cpp.o.d"
  "CMakeFiles/pblpar_sim.dir/spec.cpp.o"
  "CMakeFiles/pblpar_sim.dir/spec.cpp.o.d"
  "libpblpar_sim.a"
  "libpblpar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
