file(REMOVE_RECURSE
  "CMakeFiles/pblpar_survey.dir/instrument.cpp.o"
  "CMakeFiles/pblpar_survey.dir/instrument.cpp.o.d"
  "CMakeFiles/pblpar_survey.dir/response.cpp.o"
  "CMakeFiles/pblpar_survey.dir/response.cpp.o.d"
  "libpblpar_survey.a"
  "libpblpar_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
