file(REMOVE_RECURSE
  "libpblpar_survey.a"
)
