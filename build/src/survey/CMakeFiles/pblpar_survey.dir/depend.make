# Empty dependencies file for pblpar_survey.
# This may be replaced when dependencies are built.
