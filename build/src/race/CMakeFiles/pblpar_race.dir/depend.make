# Empty dependencies file for pblpar_race.
# This may be replaced when dependencies are built.
