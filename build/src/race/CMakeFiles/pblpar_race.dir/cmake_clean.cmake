file(REMOVE_RECURSE
  "CMakeFiles/pblpar_race.dir/detector.cpp.o"
  "CMakeFiles/pblpar_race.dir/detector.cpp.o.d"
  "CMakeFiles/pblpar_race.dir/vector_clock.cpp.o"
  "CMakeFiles/pblpar_race.dir/vector_clock.cpp.o.d"
  "libpblpar_race.a"
  "libpblpar_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
