file(REMOVE_RECURSE
  "libpblpar_race.a"
)
