# Empty dependencies file for pblpar_drugdesign.
# This may be replaced when dependencies are built.
