file(REMOVE_RECURSE
  "libpblpar_drugdesign.a"
)
