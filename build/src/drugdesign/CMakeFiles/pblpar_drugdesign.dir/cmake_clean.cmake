file(REMOVE_RECURSE
  "CMakeFiles/pblpar_drugdesign.dir/drugdesign.cpp.o"
  "CMakeFiles/pblpar_drugdesign.dir/drugdesign.cpp.o.d"
  "libpblpar_drugdesign.a"
  "libpblpar_drugdesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_drugdesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
