file(REMOVE_RECURSE
  "libpblpar_stats.a"
)
