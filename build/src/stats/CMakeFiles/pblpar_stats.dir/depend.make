# Empty dependencies file for pblpar_stats.
# This may be replaced when dependencies are built.
