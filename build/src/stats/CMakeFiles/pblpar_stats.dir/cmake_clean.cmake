file(REMOVE_RECURSE
  "CMakeFiles/pblpar_stats.dir/correlation.cpp.o"
  "CMakeFiles/pblpar_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/pblpar_stats.dir/descriptive.cpp.o"
  "CMakeFiles/pblpar_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/pblpar_stats.dir/effect.cpp.o"
  "CMakeFiles/pblpar_stats.dir/effect.cpp.o.d"
  "CMakeFiles/pblpar_stats.dir/ranking.cpp.o"
  "CMakeFiles/pblpar_stats.dir/ranking.cpp.o.d"
  "CMakeFiles/pblpar_stats.dir/special.cpp.o"
  "CMakeFiles/pblpar_stats.dir/special.cpp.o.d"
  "CMakeFiles/pblpar_stats.dir/tests.cpp.o"
  "CMakeFiles/pblpar_stats.dir/tests.cpp.o.d"
  "libpblpar_stats.a"
  "libpblpar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
