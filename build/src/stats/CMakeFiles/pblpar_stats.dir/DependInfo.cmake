
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/pblpar_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/pblpar_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/pblpar_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/pblpar_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/effect.cpp" "src/stats/CMakeFiles/pblpar_stats.dir/effect.cpp.o" "gcc" "src/stats/CMakeFiles/pblpar_stats.dir/effect.cpp.o.d"
  "/root/repo/src/stats/ranking.cpp" "src/stats/CMakeFiles/pblpar_stats.dir/ranking.cpp.o" "gcc" "src/stats/CMakeFiles/pblpar_stats.dir/ranking.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/pblpar_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/pblpar_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/tests.cpp" "src/stats/CMakeFiles/pblpar_stats.dir/tests.cpp.o" "gcc" "src/stats/CMakeFiles/pblpar_stats.dir/tests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pblpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
