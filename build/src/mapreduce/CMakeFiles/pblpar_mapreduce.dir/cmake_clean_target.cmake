file(REMOVE_RECURSE
  "libpblpar_mapreduce.a"
)
