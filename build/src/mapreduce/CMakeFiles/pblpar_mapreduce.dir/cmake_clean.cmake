file(REMOVE_RECURSE
  "CMakeFiles/pblpar_mapreduce.dir/jobs.cpp.o"
  "CMakeFiles/pblpar_mapreduce.dir/jobs.cpp.o.d"
  "libpblpar_mapreduce.a"
  "libpblpar_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pblpar_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
