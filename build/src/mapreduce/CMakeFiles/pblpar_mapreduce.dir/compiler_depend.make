# Empty compiler generated dependencies file for pblpar_mapreduce.
# This may be replaced when dependencies are built.
