# Empty compiler generated dependencies file for course_test.
# This may be replaced when dependencies are built.
