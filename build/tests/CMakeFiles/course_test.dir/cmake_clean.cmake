file(REMOVE_RECURSE
  "CMakeFiles/course_test.dir/course/course_test.cpp.o"
  "CMakeFiles/course_test.dir/course/course_test.cpp.o.d"
  "course_test"
  "course_test.pdb"
  "course_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
