# Empty compiler generated dependencies file for integration_future_mpi_test.
# This may be replaced when dependencies are built.
