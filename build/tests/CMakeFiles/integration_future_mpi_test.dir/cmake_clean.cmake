file(REMOVE_RECURSE
  "CMakeFiles/integration_future_mpi_test.dir/integration/future_mpi_test.cpp.o"
  "CMakeFiles/integration_future_mpi_test.dir/integration/future_mpi_test.cpp.o.d"
  "integration_future_mpi_test"
  "integration_future_mpi_test.pdb"
  "integration_future_mpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_future_mpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
