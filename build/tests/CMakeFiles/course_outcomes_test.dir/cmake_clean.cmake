file(REMOVE_RECURSE
  "CMakeFiles/course_outcomes_test.dir/course/outcomes_test.cpp.o"
  "CMakeFiles/course_outcomes_test.dir/course/outcomes_test.cpp.o.d"
  "course_outcomes_test"
  "course_outcomes_test.pdb"
  "course_outcomes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_outcomes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
