# Empty compiler generated dependencies file for course_outcomes_test.
# This may be replaced when dependencies are built.
