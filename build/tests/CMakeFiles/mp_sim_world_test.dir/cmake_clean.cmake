file(REMOVE_RECURSE
  "CMakeFiles/mp_sim_world_test.dir/mp/sim_world_test.cpp.o"
  "CMakeFiles/mp_sim_world_test.dir/mp/sim_world_test.cpp.o.d"
  "mp_sim_world_test"
  "mp_sim_world_test.pdb"
  "mp_sim_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_sim_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
