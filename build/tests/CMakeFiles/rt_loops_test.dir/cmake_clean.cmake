file(REMOVE_RECURSE
  "CMakeFiles/rt_loops_test.dir/rt/loops_test.cpp.o"
  "CMakeFiles/rt_loops_test.dir/rt/loops_test.cpp.o.d"
  "rt_loops_test"
  "rt_loops_test.pdb"
  "rt_loops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_loops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
