# Empty compiler generated dependencies file for rt_loops_test.
# This may be replaced when dependencies are built.
