# Empty compiler generated dependencies file for rt_parallel_test.
# This may be replaced when dependencies are built.
