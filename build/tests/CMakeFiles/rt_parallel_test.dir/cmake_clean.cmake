file(REMOVE_RECURSE
  "CMakeFiles/rt_parallel_test.dir/rt/parallel_test.cpp.o"
  "CMakeFiles/rt_parallel_test.dir/rt/parallel_test.cpp.o.d"
  "rt_parallel_test"
  "rt_parallel_test.pdb"
  "rt_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
