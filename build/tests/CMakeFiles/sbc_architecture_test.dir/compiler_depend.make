# Empty compiler generated dependencies file for sbc_architecture_test.
# This may be replaced when dependencies are built.
