file(REMOVE_RECURSE
  "CMakeFiles/sbc_architecture_test.dir/sbc/architecture_test.cpp.o"
  "CMakeFiles/sbc_architecture_test.dir/sbc/architecture_test.cpp.o.d"
  "sbc_architecture_test"
  "sbc_architecture_test.pdb"
  "sbc_architecture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbc_architecture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
