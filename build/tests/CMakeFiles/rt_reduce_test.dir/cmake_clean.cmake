file(REMOVE_RECURSE
  "CMakeFiles/rt_reduce_test.dir/rt/reduce_test.cpp.o"
  "CMakeFiles/rt_reduce_test.dir/rt/reduce_test.cpp.o.d"
  "rt_reduce_test"
  "rt_reduce_test.pdb"
  "rt_reduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
