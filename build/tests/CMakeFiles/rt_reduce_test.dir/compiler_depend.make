# Empty compiler generated dependencies file for rt_reduce_test.
# This may be replaced when dependencies are built.
