file(REMOVE_RECURSE
  "CMakeFiles/drugdesign_test.dir/drugdesign/drugdesign_test.cpp.o"
  "CMakeFiles/drugdesign_test.dir/drugdesign/drugdesign_test.cpp.o.d"
  "drugdesign_test"
  "drugdesign_test.pdb"
  "drugdesign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drugdesign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
