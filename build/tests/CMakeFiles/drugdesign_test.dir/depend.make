# Empty dependencies file for drugdesign_test.
# This may be replaced when dependencies are built.
