# Empty compiler generated dependencies file for drugdesign_test.
# This may be replaced when dependencies are built.
