# Empty dependencies file for util_text_test.
# This may be replaced when dependencies are built.
