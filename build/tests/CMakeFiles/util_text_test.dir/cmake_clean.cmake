file(REMOVE_RECURSE
  "CMakeFiles/util_text_test.dir/util/text_test.cpp.o"
  "CMakeFiles/util_text_test.dir/util/text_test.cpp.o.d"
  "util_text_test"
  "util_text_test.pdb"
  "util_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
