# Empty compiler generated dependencies file for classroom_test.
# This may be replaced when dependencies are built.
