# Empty dependencies file for classroom_test.
# This may be replaced when dependencies are built.
