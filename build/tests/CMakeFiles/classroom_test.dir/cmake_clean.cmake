file(REMOVE_RECURSE
  "CMakeFiles/classroom_test.dir/classroom/classroom_test.cpp.o"
  "CMakeFiles/classroom_test.dir/classroom/classroom_test.cpp.o.d"
  "classroom_test"
  "classroom_test.pdb"
  "classroom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classroom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
