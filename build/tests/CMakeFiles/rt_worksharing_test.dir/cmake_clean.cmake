file(REMOVE_RECURSE
  "CMakeFiles/rt_worksharing_test.dir/rt/worksharing_test.cpp.o"
  "CMakeFiles/rt_worksharing_test.dir/rt/worksharing_test.cpp.o.d"
  "rt_worksharing_test"
  "rt_worksharing_test.pdb"
  "rt_worksharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_worksharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
