# Empty compiler generated dependencies file for rt_worksharing_test.
# This may be replaced when dependencies are built.
