# Empty dependencies file for patternlets_test.
# This may be replaced when dependencies are built.
