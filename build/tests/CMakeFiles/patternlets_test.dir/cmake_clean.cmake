file(REMOVE_RECURSE
  "CMakeFiles/patternlets_test.dir/patternlets/patternlets_test.cpp.o"
  "CMakeFiles/patternlets_test.dir/patternlets/patternlets_test.cpp.o.d"
  "patternlets_test"
  "patternlets_test.pdb"
  "patternlets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patternlets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
