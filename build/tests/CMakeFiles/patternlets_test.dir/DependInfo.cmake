
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/patternlets/patternlets_test.cpp" "tests/CMakeFiles/patternlets_test.dir/patternlets/patternlets_test.cpp.o" "gcc" "tests/CMakeFiles/patternlets_test.dir/patternlets/patternlets_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/patternlets/CMakeFiles/pblpar_patternlets.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pblpar_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/pblpar_race.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pblpar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pblpar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
