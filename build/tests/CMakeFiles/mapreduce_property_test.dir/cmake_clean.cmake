file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_property_test.dir/mapreduce/mapreduce_property_test.cpp.o"
  "CMakeFiles/mapreduce_property_test.dir/mapreduce/mapreduce_property_test.cpp.o.d"
  "mapreduce_property_test"
  "mapreduce_property_test.pdb"
  "mapreduce_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
