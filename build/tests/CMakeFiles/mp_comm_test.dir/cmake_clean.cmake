file(REMOVE_RECURSE
  "CMakeFiles/mp_comm_test.dir/mp/comm_test.cpp.o"
  "CMakeFiles/mp_comm_test.dir/mp/comm_test.cpp.o.d"
  "mp_comm_test"
  "mp_comm_test.pdb"
  "mp_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
