file(REMOVE_RECURSE
  "CMakeFiles/stats_special_test.dir/stats/special_test.cpp.o"
  "CMakeFiles/stats_special_test.dir/stats/special_test.cpp.o.d"
  "stats_special_test"
  "stats_special_test.pdb"
  "stats_special_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_special_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
