# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_rng_test[1]_include.cmake")
include("/root/repo/build/tests/util_table_test[1]_include.cmake")
include("/root/repo/build/tests/util_text_test[1]_include.cmake")
include("/root/repo/build/tests/sim_machine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_timing_test[1]_include.cmake")
include("/root/repo/build/tests/race_detector_test[1]_include.cmake")
include("/root/repo/build/tests/rt_loops_test[1]_include.cmake")
include("/root/repo/build/tests/rt_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/rt_reduce_test[1]_include.cmake")
include("/root/repo/build/tests/mp_comm_test[1]_include.cmake")
include("/root/repo/build/tests/stats_special_test[1]_include.cmake")
include("/root/repo/build/tests/stats_tests_test[1]_include.cmake")
include("/root/repo/build/tests/stats_effect_correlation_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/survey_test[1]_include.cmake")
include("/root/repo/build/tests/course_test[1]_include.cmake")
include("/root/repo/build/tests/classroom_test[1]_include.cmake")
include("/root/repo/build/tests/patternlets_test[1]_include.cmake")
include("/root/repo/build/tests/drugdesign_test[1]_include.cmake")
include("/root/repo/build/tests/sim_condition_test[1]_include.cmake")
include("/root/repo/build/tests/mp_sim_world_test[1]_include.cmake")
include("/root/repo/build/tests/sbc_architecture_test[1]_include.cmake")
include("/root/repo/build/tests/sim_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_future_mpi_test[1]_include.cmake")
include("/root/repo/build/tests/rt_worksharing_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_property_test[1]_include.cmake")
include("/root/repo/build/tests/course_outcomes_test[1]_include.cmake")
include("/root/repo/build/tests/stats_ci_test[1]_include.cmake")
