// The campus server in a dozen lines: three course sections with skewed
// fair-share weights submit mixed jobs — patternlet loops, a drug-design
// sweep, a MapReduce word count — to one service::Server, which
// multiplexes them onto the shared worker pool with bounded admission
// and per-job deadlines. Mirrors the README "Running the campus server"
// quick-start.

#include <cstdio>
#include <vector>

#include "drugdesign/drugdesign.hpp"
#include "service/jobs.hpp"
#include "service/server.hpp"

int main() {
  using namespace pblpar;

  service::ServerOptions options;
  options.lanes = 2;            // two jobs execute at a time
  options.max_queue_depth = 64; // admission bound; beyond it: backpressure
  options.admission = service::AdmissionPolicy::Reject;
  service::Server server(
      {{"intro", 4.0}, {"systems", 2.0}, {"seminar", 1.0}}, options);

  // The intro section floods the server; fair-share keeps the seminar's
  // single job from waiting behind all of them.
  std::vector<service::JobTicket> flood;
  for (int i = 0; i < 12; ++i) {
    flood.push_back(server.submit("intro", service::jobs::patternlet(4096)));
  }

  drugdesign::Config sweep;
  sweep.num_ligands = 32;
  service::JobTicket best_binder =
      server.submit("systems", service::jobs::drugdesign_sweep(sweep));

  service::JobOptions deadline;
  deadline.deadline_s = 5.0;  // cancelled cooperatively if it overruns
  service::JobTicket words = server.submit(
      "seminar",
      service::jobs::mapreduce_word_count(
          {"the campus server multiplexes tenants",
           "onto one worker pool with fair shares"}),
      deadline);

  server.drain();
  const service::JobResult sweep_result = best_binder.wait();
  const service::JobResult words_result = words.wait();
  std::printf("drug design: %s\n", sweep_result.outcome.summary.c_str());
  std::printf("word count:  %s\n", words_result.outcome.summary.c_str());

  const service::ServerStats stats = server.stats();
  for (const service::TenantStats& tenant : stats.tenants) {
    std::printf("tenant %-8s weight %.0f  completed %lld\n",
                tenant.name.c_str(), tenant.weight,
                static_cast<long long>(tenant.completed));
  }
  return sweep_result.status == service::JobStatus::Done &&
                 words_result.status == service::JobStatus::Done
             ? 0
             : 1;
}
