// Quickstart: simulate the course's Raspberry Pi, run a parallel loop on
// it with TeachMP, and look at the speedup — the "aha" of Assignment 2 in
// under a minute, on any host.
//
//   ./quickstart

#include <cstdio>

#include "rt/parallel.hpp"
#include "rt/reduce.hpp"
#include "sim/spec.hpp"

int main() {
  using namespace pblpar;

  std::printf("pblpar quickstart: summing 1..N on a simulated %s\n\n",
              sim::MachineSpec::raspberry_pi_3bplus().name.c_str());

  constexpr std::int64_t kN = 2'000'000;
  // Each iteration is modelled as ~20 Pi ops.
  const rt::CostModel cost = rt::CostModel::uniform(20.0);

  double sequential_time = 0.0;
  for (const int threads : {1, 2, 4, 5}) {
    const auto reduced = rt::parallel_reduce<long long>(
        rt::ParallelConfig::sim_pi(threads), rt::Range::upto(kN),
        rt::Schedule::static_block(), 0LL,
        [](std::int64_t i) { return static_cast<long long>(i); },
        [](long long a, long long b) { return a + b; }, cost);

    const double elapsed = reduced.run.elapsed_seconds();
    if (threads == 1) {
      sequential_time = elapsed;
    }
    std::printf(
        "  %d thread%s  sum = %lld   virtual time %7.2f ms   speedup %.2fx\n",
        threads, threads == 1 ? ": " : "s:", reduced.value, elapsed * 1e3,
        sequential_time / elapsed);
  }

  std::printf(
      "\nFour threads on the Pi's four cores give ~4x; the fifth thread "
      "has no core to run on and gains nothing.\n"
      "Everything above executed deterministically in virtual time — no "
      "Raspberry Pi (and no host parallelism) required.\n");
  return 0;
}
