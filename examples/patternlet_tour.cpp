// A guided tour of the shared-memory patternlets from Assignments 2-4:
// fork-join, SPMD, the data-race lesson, loop scheduling, reduction,
// trapezoidal integration, barrier coordination, and master-worker.
//
//   ./patternlet_tour

#include <cmath>
#include <cstdio>

#include "patternlets/patternlets.hpp"
#include "rt/trace.hpp"

namespace {

double quadratic(double x) { return x * x; }

void print_assignment(const pblpar::patternlets::LoopAssignment& assignment,
                      int threads) {
  for (int t = 0; t < threads; ++t) {
    std::printf("    thread %d:", t);
    for (const std::int64_t i : assignment.iterations_of(t)) {
      std::printf(" %lld", static_cast<long long>(i));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace pblpar;
  const rt::ParallelConfig pi4 = rt::ParallelConfig::sim_pi(4);

  std::printf("== Assignment 2: fork-join ==\n");
  const auto forked = patternlets::fork_join(pi4);
  std::printf("  greeting order:");
  for (const int tid : forked.greeting_order) {
    std::printf(" %d", tid);
  }
  std::printf("  (master forked %llu threads)\n\n",
              static_cast<unsigned long long>(
                  forked.run.sim_report->spawns));

  std::printf("== Assignment 2: SPMD ==\n");
  for (const auto& [tid, team] : patternlets::spmd(pi4).reports) {
    std::printf("  hello from thread %d of %d\n", tid, team);
  }

  std::printf("\n== Assignment 2: shared memory — scope matters ==\n");
  const auto race_demo = patternlets::shared_memory_race_demo(4, 25);
  std::printf(
      "  racy version:  final = %ld, detector found %zu race(s)\n"
      "  fixed version: final = %ld, detector found %zu race(s)\n",
      race_demo.racy_final, race_demo.races_in_racy_version,
      race_demo.fixed_final, race_demo.races_in_fixed_version);

  std::printf("\n== Assignment 3: equal chunks ==\n");
  print_assignment(patternlets::parallel_loop_equal_chunks(pi4, 16), 4);

  std::printf("\n== Assignment 3: schedule(static,2) ==\n");
  print_assignment(patternlets::parallel_loop_chunks(
                       pi4, 16, rt::Schedule::static_chunk(2)),
                   4);

  std::printf("\n== Assignment 3: schedule(dynamic,1) on imbalanced work ==\n");
  rt::CostModel triangular;
  triangular.ops_fn = [](std::int64_t i) { return 1e5 * (i + 1.0); };
  print_assignment(patternlets::parallel_loop_chunks(
                       pi4, 16, rt::Schedule::dynamic(1), triangular),
                   4);

  std::printf("\n== Assignment 3: watching a schedule run ==\n");
  // The same imbalanced loop, now with the tracing layer on: each lane is
  // one thread, each block one claimed chunk, time flows left to right.
  const auto traced = rt::parallel_for(
      pi4.traced(), rt::Range::upto(16), rt::Schedule::dynamic(1),
      [](std::int64_t) {}, triangular);
  std::printf("%s", traced.profile->timeline_chart(0, 56).c_str());
  std::printf("  %s\n", traced.profile->summary().c_str());

  std::printf("\n== Assignment 3: reduction ==\n");
  const auto reduced = patternlets::reduction_sum(pi4, 1000);
  std::printf("  sum(0..999) = %ld\n", reduced.sum);

  std::printf("\n== Assignment 4: trapezoidal integration ==\n");
  const auto integral =
      patternlets::trapezoid_integration(pi4, &quadratic, 0.0, 3.0, 100000);
  std::printf("  integral of x^2 over [0,3] = %.6f (exact 9)\n",
              integral.integral);

  std::printf("\n== Assignment 4: barrier coordination ==\n");
  const auto barrier = patternlets::barrier_coordination(pi4);
  std::printf("  all phase-1 work visible after the barrier: %s\n",
              barrier.phases_separated ? "yes" : "NO (bug!)");

  std::printf("\n== Assignment 4: master-worker ==\n");
  const auto master_worker = patternlets::master_worker(
      pi4, 60, rt::CostModel::uniform(2e5));
  for (std::size_t t = 0; t < master_worker.tasks_per_thread.size(); ++t) {
    std::printf("  thread %zu (%s) processed %lld tasks\n", t,
                t == 0 ? "master" : "worker",
                static_cast<long long>(master_worker.tasks_per_thread[t]));
  }
  std::printf("\nDone: every pattern ran on the simulated Pi.\n");
  return 0;
}
