// The canonical MapReduce examples from the Assignment 5 reading: word
// count, inverted index, URL access counts, and distributed grep, all on
// the in-memory multi-threaded framework.
//
//   ./mapreduce_wordcount

#include <cstdio>
#include <string>
#include <vector>

#include "mapreduce/jobs.hpp"

int main() {
  using namespace pblpar;

  const std::vector<std::string> documents{
      "parallel computing uses multiple cores to solve problems faster",
      "openmp makes shared memory parallel programming approachable",
      "mapreduce maps over records and reduces grouped values",
      "students explore parallel patterns on the raspberry pi",
      "teams learn parallel programming and teamwork together",
  };

  std::printf("== word count ==\n");
  auto counts = mapreduce::word_count(documents);
  // Show the repeated words only.
  for (const auto& [word, count] : counts) {
    if (count > 1) {
      std::printf("  %-12s %ld\n", word.c_str(), count);
    }
  }

  std::printf("\n== inverted index (word -> documents) ==\n");
  for (const auto& [word, docs] : mapreduce::inverted_index(documents)) {
    if (docs.size() > 1) {
      std::printf("  %-12s ->", word.c_str());
      for (const int doc : docs) {
        std::printf(" %d", doc);
      }
      std::printf("\n");
    }
  }

  std::printf("\n== URL access counts ==\n");
  const std::vector<std::string> log{
      "/home 200", "/docs 200", "/home 200", "/home 404", "/docs 200",
  };
  for (const auto& [url, hits] : mapreduce::url_access_counts(log)) {
    std::printf("  %-6s %ld hits\n", url.c_str(), hits);
  }

  std::printf("\n== distributed grep for 'parallel' ==\n");
  for (const auto& [line, text] :
       mapreduce::distributed_grep(documents, "parallel")) {
    std::printf("  doc %d: %s\n", line, text.c_str());
  }
  return 0;
}
