// The Assignment 5 application: score random ligands against a protein
// (sequential / TeachMP "OpenMP" / naive C++11-threads / MapReduce) on
// the simulated Raspberry Pi, and print the run-time comparison the
// paper's students report.
//
//   ./drug_design

#include <cstdio>

#include "drugdesign/drugdesign.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  drugdesign::Config config;
  config.num_ligands = 120;
  config.protein_len = 750;
  config.threads = 4;

  std::printf("Drug Design exemplar on the simulated Raspberry Pi 3B+\n");
  std::printf("(%d ligands, protein length %d)\n\n", config.num_ligands,
              config.protein_len);

  util::Table table("Assignment 5: which approach is fastest?");
  table.columns({"approach", "threads", "max ligand", "virtual time (ms)",
                 "best score"},
                {util::Align::Left, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right});
  for (const auto& row : drugdesign::run_assignment5_experiment(config)) {
    table.row({row.approach, std::to_string(row.threads),
               std::to_string(row.max_ligand_len),
               util::Table::num(row.time_seconds * 1e3, 2),
               std::to_string(row.best_score)});
  }
  table.note("OpenMP (dynamic schedule) wins on this irregular workload; "
             "the fixed-block C++11 partition trails it;");
  table.note("a 5th thread on 4 cores helps neither; raising max ligand "
             "length 5 -> 7 multiplies the work.");
  std::printf("%s\n", table.to_ascii().c_str());

  const auto lines = drugdesign::exemplar_source_lines();
  std::printf(
      "Program size vs performance (lines of code): sequential %d, "
      "OpenMP %d, C++11 threads %d.\n",
      lines.sequential, lines.openmp, lines.cxx11_threads);

  config.max_ligand_len = 5;
  const auto mapreduce_result = drugdesign::solve_mapreduce(config);
  std::printf(
      "MapReduce formulation (host threads) agrees: best score %d with "
      "%zu winning ligand(s).\n",
      mapreduce_result.best_score, mapreduce_result.best_ligands.size());
  return 0;
}
