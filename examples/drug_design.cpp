// The Assignment 5 application: score random ligands against a protein
// (sequential / TeachMP "OpenMP" / naive C++11-threads / MapReduce) on
// the simulated Raspberry Pi, and print the run-time comparison the
// paper's students report.
//
//   ./drug_design

#include <cstdio>

#include "drugdesign/drugdesign.hpp"
#include "rt/parallel.hpp"
#include "rt/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  drugdesign::Config config;
  config.num_ligands = 120;
  config.protein_len = 750;
  config.threads = 4;

  std::printf("Drug Design exemplar on the simulated Raspberry Pi 3B+\n");
  std::printf("(%d ligands, protein length %d)\n\n", config.num_ligands,
              config.protein_len);

  util::Table table("Assignment 5: which approach is fastest?");
  table.columns({"approach", "threads", "max ligand", "virtual time (ms)",
                 "best score"},
                {util::Align::Left, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right});
  for (const auto& row : drugdesign::run_assignment5_experiment(config)) {
    table.row({row.approach, std::to_string(row.threads),
               std::to_string(row.max_ligand_len),
               util::Table::num(row.time_seconds * 1e3, 2),
               std::to_string(row.best_score)});
  }
  table.note("OpenMP (dynamic schedule) wins on this irregular workload; "
             "the fixed-block C++11 partition trails it;");
  table.note("a 5th thread on 4 cores helps neither; raising max ligand "
             "length 5 -> 7 multiplies the work.");
  std::printf("%s\n", table.to_ascii().c_str());

  const auto lines = drugdesign::exemplar_source_lines();
  std::printf(
      "Program size vs performance (lines of code): sequential %d, "
      "OpenMP %d, C++11 threads %d.\n",
      lines.sequential, lines.openmp, lines.cxx11_threads);

  config.max_ligand_len = 5;
  const auto mapreduce_result = drugdesign::solve_mapreduce(config);
  std::printf(
      "MapReduce formulation (host threads) agrees: best score %d with "
      "%zu winning ligand(s).\n",
      mapreduce_result.best_score, mapreduce_result.best_ligands.size());

  // Why dynamic wins here, made visible: ligand scoring cost grows
  // quadratically with ligand length (the LCS kernel), and ligand files
  // commonly arrive sorted by length — so a static block split hands one
  // thread all the long ligands while dynamic keeps every lane packed.
  std::printf(
      "\nWhy the dynamic schedule wins — per-thread chunk timelines of a "
      "length-sorted ligand batch\n(32 ligands, lengths 2..7, simulated Pi, "
      "lanes = threads, blocks = claimed chunks):\n\n");
  rt::CostModel ligand_cost;
  ligand_cost.ops_fn = [](std::int64_t i) {
    const double len = 2.0 + static_cast<double>(i) * 5.0 / 31.0;
    return 3e4 * len * len;
  };
  for (const auto& [name, schedule] :
       {std::pair<const char*, rt::Schedule>{"static (block)",
                                             rt::Schedule::static_block()},
        std::pair<const char*, rt::Schedule>{"dynamic,1",
                                             rt::Schedule::dynamic(1)}}) {
    const rt::RunResult run = rt::parallel_for(
        rt::ParallelConfig::sim_pi(4).traced(), rt::Range::upto(32),
        schedule, [](std::int64_t) {}, ligand_cost);
    std::printf("  schedule(%s):\n%s", name,
                run.profile->timeline_chart(0, 56).c_str());
    std::printf("  %s\n\n", run.profile->summary().c_str());
  }
  return 0;
}
