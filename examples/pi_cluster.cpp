// The course's next chapter, runnable today: a simulated cluster of
// Raspberry Pis running TeachMPI — distributed trapezoid integration and
// a look at how network latency shapes the speedup.
//
//   ./pi_cluster

#include <cstdio>

#include "mp/sim_world.hpp"

namespace {
double curve(double x) { return 4.0 / (1.0 + x * x); }  // integral = pi
}

int main() {
  using namespace pblpar;
  constexpr std::int64_t kN = 1'000'000;

  std::printf(
      "Distributed trapezoid rule for pi on simulated Pi clusters\n\n");
  double serial_time = 0.0;
  for (const int nodes : {1, 2, 4, 8}) {
    double integral = 0.0;
    const mp::ClusterReport report = mp::SimWorld::run(
        nodes, [&](mp::SimComm& comm) {
          const std::int64_t begin = comm.rank() * kN / comm.size();
          const std::int64_t end = (comm.rank() + 1) * kN / comm.size();
          const double h = 1.0 / static_cast<double>(kN);
          double local = 0.0;
          for (std::int64_t i = begin; i < end; ++i) {
            const double x0 = h * static_cast<double>(i);
            local += 0.5 * h * (curve(x0) + curve(x0 + h));
          }
          comm.context().compute(10.0 * static_cast<double>(end - begin));
          const double total = comm.allreduce(
              local, [](double a, double b) { return a + b; });
          if (comm.rank() == 0) {
            integral = total;
          }
        });
    if (nodes == 1) {
      serial_time = report.machine.makespan_s;
    }
    std::printf(
        "  %2d node%s pi = %.8f   %7.2f ms virtual   speedup %.2fx   "
        "(%llu messages, %llu payload bytes)\n",
        nodes, nodes == 1 ? ": " : "s:", integral,
        report.machine.makespan_s * 1e3,
        serial_time / report.machine.makespan_s,
        static_cast<unsigned long long>(report.messages),
        static_cast<unsigned long long>(report.payload_bytes));
  }
  std::printf(
      "\nEach node is a whole (single-rank) Pi; messages pay 200 us "
      "latency + bandwidth.\nScaling continues past one Pi's four cores — "
      "the paper's motivation for teaching MPI next.\n");
  return 0;
}
