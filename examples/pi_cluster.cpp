// The course's next chapter, runnable today: a simulated cluster of
// Raspberry Pis running TeachMPI — distributed trapezoid integration and
// a look at how network latency shapes the speedup, then the same
// integral on the fault-tolerant master–worker engine with a deliberate
// straggler injected.
//
//   ./pi_cluster

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/engine.hpp"
#include "cluster/wire.hpp"
#include "mp/sim_world.hpp"

namespace {
double curve(double x) { return 4.0 / (1.0 + x * x); }  // integral = pi
}

int main() {
  using namespace pblpar;
  constexpr std::int64_t kN = 1'000'000;

  std::printf(
      "Distributed trapezoid rule for pi on simulated Pi clusters\n\n");
  double serial_time = 0.0;
  for (const int nodes : {1, 2, 4, 8}) {
    double integral = 0.0;
    const mp::ClusterReport report = mp::SimWorld::run(
        nodes, [&](mp::SimComm& comm) {
          const std::int64_t begin = comm.rank() * kN / comm.size();
          const std::int64_t end = (comm.rank() + 1) * kN / comm.size();
          const double h = 1.0 / static_cast<double>(kN);
          double local = 0.0;
          for (std::int64_t i = begin; i < end; ++i) {
            const double x0 = h * static_cast<double>(i);
            local += 0.5 * h * (curve(x0) + curve(x0 + h));
          }
          comm.context().compute(10.0 * static_cast<double>(end - begin));
          const double total = comm.allreduce(
              local, [](double a, double b) { return a + b; });
          if (comm.rank() == 0) {
            integral = total;
          }
        });
    if (nodes == 1) {
      serial_time = report.machine.makespan_s;
    }
    std::printf(
        "  %2d node%s pi = %.8f   %7.2f ms virtual   speedup %.2fx   "
        "(%llu messages, %llu payload bytes)\n",
        nodes, nodes == 1 ? ": " : "s:", integral,
        report.machine.makespan_s * 1e3,
        serial_time / report.machine.makespan_s,
        static_cast<unsigned long long>(report.messages),
        static_cast<unsigned long long>(report.payload_bytes));
  }
  std::printf(
      "\nEach node is a whole (single-rank) Pi; messages pay 200 us "
      "latency + bandwidth.\nScaling continues past one Pi's four cores — "
      "the paper's motivation for teaching MPI next.\n");

  // --- Part 2: the same integral, fault-tolerantly ------------------------
  // Split the interval into 12 tasks and hand them to the master–worker
  // engine on a 4-node cluster, with rank 2 deliberately running 25x
  // slow. The master speculates a backup copy of the straggler's task;
  // the answer is unchanged.
  std::printf(
      "\nSame pi, now on the fault-tolerant cluster engine (12 tasks, 4 "
      "nodes,\nrank 2 injected to run 25x slow):\n\n");

  constexpr int kTasks = 12;
  std::vector<std::vector<std::byte>> tasks;
  for (int t = 0; t < kTasks; ++t) {
    cluster::Writer writer;
    writer.i64(t * kN / kTasks);        // [begin, end) trapezoid range
    writer.i64((t + 1) * kN / kTasks);
    tasks.push_back(std::move(writer).take());
  }

  const cluster::TaskFn slice_task =
      [](cluster::TaskContext& ctx, int, mp::ByteView in) {
        cluster::Reader reader(in);
        const std::int64_t begin = reader.i64();
        const std::int64_t end = reader.i64();
        const double h = 1.0 / static_cast<double>(kN);
        double local = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          const double x0 = h * static_cast<double>(i);
          local += 0.5 * h * (curve(x0) + curve(x0 + h));
          if ((i - begin) % 10'000 == 0) {
            ctx.charge(1e5);  // 10 flops per trapezoid, in slices
            ctx.progress();
          }
        }
        cluster::Writer writer;
        writer.f64(local);
        return std::move(writer).take();
      };

  cluster::FaultPlan faults;
  faults.stragglers.push_back(cluster::StragglerFault{2, 25.0});
  const cluster::SimClusterRun run =
      cluster::run_sim_cluster(4, tasks, slice_task, {}, &faults);

  double pi = 0.0;
  for (const mp::Buffer& result : run.results) {
    pi += cluster::Reader(result).f64();
  }
  std::printf("  pi = %.8f (identical with and without the fault)\n\n",
              pi);
  std::printf("%s\n\n", run.profile.summary().c_str());

  if (run.profile.schedule != nullptr) {
    std::printf("Per-rank attempt timeline (lane = rank, chunk = task):\n%s\n",
                run.profile.schedule->timeline_chart(0).c_str());
  }

  std::printf("Master event log, first 12 lines:\n");
  std::istringstream log(run.profile.event_log());
  std::string line;
  for (int i = 0; i < 12 && std::getline(log, line); ++i) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf(
      "\nRe-run it: every line above is byte-identical — fault injection "
      "is\nseeded and virtual time is deterministic, so straggler bugs "
      "reproduce.\n");
  return 0;
}
