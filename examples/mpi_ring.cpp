// TeachMPI demo — the course's planned MPI extension: a rank ring pass,
// the core collectives, and a ring allreduce, all in one process.
//
//   ./mpi_ring

#include <cstdio>
#include <mutex>
#include <numeric>

#include "mp/world.hpp"

int main() {
  using namespace pblpar;
  constexpr int kRanks = 4;
  std::mutex print_mu;

  std::printf("== ring pass (each rank forwards a growing token) ==\n");
  mp::World::run(kRanks, [&](mp::Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    if (comm.rank() == 0) {
      comm.send(next, 0, 1);
      const int token = comm.recv<int>(comm.size() - 1, 0);
      std::lock_guard guard(print_mu);
      std::printf("  token returned to rank 0 with value %d\n", token);
    } else {
      const int token = comm.recv<int>(comm.rank() - 1, 0);
      comm.send(next, 0, token + 1);
    }
  });

  std::printf("\n== collectives ==\n");
  mp::World::run(kRanks, [&](mp::Comm& comm) {
    std::string motto;
    if (comm.rank() == 0) {
      motto = "teamwork scales";
    }
    comm.bcast(motto, 0);

    const int sum = comm.allreduce(comm.rank() + 1,
                                   [](int a, int b) { return a + b; });
    const std::vector<int> squares = comm.allgather(comm.rank() *
                                                    comm.rank());
    comm.barrier();
    std::lock_guard guard(print_mu);
    std::printf("  rank %d: motto='%s', sum(1..%d)=%d, squares=[",
                comm.rank(), motto.c_str(), comm.size(), sum);
    for (std::size_t i = 0; i < squares.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", squares[i]);
    }
    std::printf("]\n");
  });

  std::printf("\n== ring allreduce (the data-parallel training trick) ==\n");
  mp::World::run(kRanks, [&](mp::Comm& comm) {
    // Each rank contributes a gradient-like vector of 8 values.
    std::vector<double> gradient(8);
    std::iota(gradient.begin(), gradient.end(),
              static_cast<double>(comm.rank()));
    const std::vector<double> reduced = comm.ring_allreduce_sum(gradient);
    if (comm.rank() == 0) {
      std::lock_guard guard(print_mu);
      std::printf("  reduced[0..7]:");
      for (const double v : reduced) {
        std::printf(" %.0f", v);
      }
      std::printf("\n");
    }
  });
  return 0;
}
