// Simulate the paper's whole study: generate the 124-student cohort, form
// the 26 criteria-balanced teams, run the semester timeline, administer
// the Team Design Skills Growth Survey twice, and print the analysis
// (the shapes of the paper's Tables 1-6).
//
//   ./classroom_semester

#include <cstdio>

#include "classroom/study.hpp"
#include "course/assignments.hpp"
#include "course/timeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  std::printf("Simulating CSc 3210, Fall 2018 (124 students, 26 teams)\n\n");
  const classroom::SemesterStudy study = classroom::SemesterStudy::simulate();

  // --- Teams.
  const auto metrics = course::measure_balance(study.roster, study.teams);
  std::printf(
      "Team formation: %zu teams, ability spread %.3f, isolated females "
      "%d, coordinator rotates each assignment.\n\n",
      study.teams.size(), metrics.ability_spread,
      metrics.isolated_females);

  // --- Timeline (Fig. 1).
  std::printf("Semester timeline:\n");
  for (const auto& event : course::semester_timeline()) {
    std::printf("  week %2d  %s\n", event.week, event.label.c_str());
  }

  // --- Table 1.
  const auto& analysis = study.analysis;
  std::printf("\nPaired t-tests (paper's Table 1):\n");
  std::printf("  class emphasis:  diff %+0.3f  t=%.2f  %s\n",
              analysis.emphasis_ttest.mean_difference,
              analysis.emphasis_ttest.t,
              util::Table::pvalue(analysis.emphasis_ttest.p_two_tailed)
                  .c_str());
  std::printf("  personal growth: diff %+0.3f  t=%.2f  %s\n",
              analysis.growth_ttest.mean_difference,
              analysis.growth_ttest.t,
              util::Table::pvalue(analysis.growth_ttest.p_two_tailed)
                  .c_str());

  // --- Tables 2-3.
  std::printf("\nEffect sizes (Tables 2-3):\n");
  std::printf("  emphasis: %.3f -> %.3f, Cohen's d = %.2f (%s)\n",
              analysis.emphasis_effect.mean_first,
              analysis.emphasis_effect.mean_second,
              analysis.emphasis_effect.cohens_d,
              stats::to_string(analysis.emphasis_effect.magnitude).c_str());
  std::printf("  growth:   %.3f -> %.3f, Cohen's d = %.2f (%s)\n",
              analysis.growth_effect.mean_first,
              analysis.growth_effect.mean_second,
              analysis.growth_effect.cohens_d,
              stats::to_string(analysis.growth_effect.magnitude).c_str());

  // --- Table 4.
  std::printf("\nEmphasis-growth correlations (Table 4):\n");
  for (const auto& row : analysis.correlations) {
    std::printf("  %-31s r = %.2f / %.2f (%s / %s)\n",
                survey::to_string(row.element).c_str(), row.first_half.r,
                row.second_half.r,
                stats::to_string(row.first_half.band()).c_str(),
                stats::to_string(row.second_half.band()).c_str());
  }

  // --- Tables 5-6.
  std::printf("\nRanking of personal growth (Table 6), second half:\n");
  for (const auto& item : analysis.growth_ranking[1]) {
    std::printf("  %d. %-31s %.2f\n", item.rank, item.name.c_str(),
                item.value);
  }

  std::printf(
      "\nAs in the paper: Teamwork tops every ranking, both shifts are\n"
      "significant, growth's effect size is large, and all correlations\n"
      "are positive and significant.\n");
  return 0;
}
